//! The paper's k-nearest-neighbor algorithms over a SILC index.
//!
//! All of them are best-first searches over a priority queue `Q` holding
//! quadtree blocks of the *object* index and individual objects, keyed by
//! the lower bound `δ−` of their network-distance interval from the query.
//! They differ in the bookkeeping around `Q`:
//!
//! * [`inn`] — incremental: pop, expand blocks, refine objects until the
//!   top object cannot collide with anything behind it, report, repeat.
//! * [`knn`] with [`KnnVariant::Basic`] — non-incremental: additionally
//!   keeps the candidate list `L` (best k by `δ+`) whose kth upper bound
//!   `Dk` prunes both queue insertions and termination (paper p.22–23).
//! * [`KnnVariant::EarlyEstimate`] (kNN-I) — also freezes the first full
//!   `L` into the estimate `D⁰k` and refuses to enqueue anything beyond it.
//! * [`KnnVariant::MinDist`] (kNN-M) — also confirms objects whose `δ+`
//!   falls below `KMINDIST`, the minimum possible kth-neighbor distance,
//!   skipping the refinements a total ordering would need; output is
//!   unsorted.
//!
//! Every algorithm runs over a [`KnnScratch`] — the heap, object-state map,
//! candidate list and result buffers a [`crate::QuerySession`] reuses across
//! queries so that the steady-state hot path allocates nothing. The free
//! functions here are one-shot wrappers that build a fresh scratch per call.

use crate::candidates::CandidateList;
use crate::objects::{ObjectId, ObjectSet};
use crate::result::{KnnResult, Neighbor, QueryStats};
use silc::refine::RefinableDistance;
use silc::{DistanceBrowser, QueryError};
use silc_network::VertexId;
use silc_quadtree::{NodeId, NodeView};
use std::cmp::Ordering;
use std::collections::hash_map::Entry as MapEntry;
use std::collections::{BinaryHeap, HashMap};
use std::time::Instant;

/// Which refinement-avoidance machinery the [`knn`] engine runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnnVariant {
    /// The plain non-incremental kNN algorithm (queues `Q` and `L`, `Dk`).
    Basic,
    /// kNN-I: prune queue insertions against the early estimate `D⁰k`.
    EarlyEstimate,
    /// kNN-M: confirm against `KMINDIST`; result order is not sorted.
    MinDist,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Kind {
    Block(NodeId),
    Object(ObjectId, u32),
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct QEntry {
    key: f64,
    seq: u64,
    kind: Kind,
}

impl Eq for QEntry {}

impl Ord for QEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by key; deterministic ties by insertion sequence.
        other.key.total_cmp(&self.key).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for QEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

struct ObjState {
    refiner: RefinableDistance,
    version: u32,
    confirmed: bool,
}

/// The reusable workspaces of the SILC query algorithms: the priority queue
/// `Q`, the per-object refinement states, the candidate list `L`, and the
/// result buffers. Create once (per session / thread), run any number of
/// [`knn`]/[`inn`] queries through it — after the structures have grown to a
/// workload's steady-state size, further queries allocate nothing.
pub struct KnnScratch {
    heap: BinaryHeap<QEntry>,
    states: HashMap<ObjectId, ObjState>,
    candidates: CandidateList,
    /// `δ−` sample buffer for the `KMINDIST` computation of kNN-M.
    lows: Vec<f64>,
    /// `(exact distance, object)` buffer for the terminal fill-from-`L`.
    leftovers: Vec<(f64, ObjectId)>,
    result: KnnResult,
}

impl Default for KnnScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl KnnScratch {
    /// Empty workspaces; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        KnnScratch {
            heap: BinaryHeap::new(),
            states: HashMap::new(),
            candidates: CandidateList::new(1),
            lows: Vec::new(),
            leftovers: Vec::new(),
            result: KnnResult::default(),
        }
    }

    /// The result of the most recent query run through this scratch.
    pub fn result(&self) -> &KnnResult {
        &self.result
    }

    /// Consumes the scratch, yielding the last result — the one-shot path.
    pub fn into_result(self) -> KnnResult {
        self.result
    }

    /// Clears per-query state (allocations are retained).
    fn begin(&mut self, k: usize) {
        self.heap.clear();
        self.states.clear();
        self.candidates.reset(k);
        self.lows.clear();
        self.leftovers.clear();
        self.result.neighbors.clear();
        self.result.stats = QueryStats::default();
    }
}

/// The shared engine state: borrowed scratch structures plus per-query
/// bookkeeping.
struct Engine<'a, B: DistanceBrowser + ?Sized> {
    browser: &'a B,
    objects: &'a ObjectSet,
    query: VertexId,
    heap: &'a mut BinaryHeap<QEntry>,
    states: &'a mut HashMap<ObjectId, ObjState>,
    seq: u64,
    stats: QueryStats,
}

impl<'a, B: DistanceBrowser + ?Sized> Engine<'a, B> {
    fn new(
        browser: &'a B,
        objects: &'a ObjectSet,
        query: VertexId,
        heap: &'a mut BinaryHeap<QEntry>,
        states: &'a mut HashMap<ObjectId, ObjState>,
    ) -> Result<Self, QueryError> {
        let mut e =
            Engine { browser, objects, query, heap, states, seq: 0, stats: QueryStats::default() };
        if !objects.is_empty() {
            let root = objects.quadtree().root();
            let key = e.block_key(root)?;
            e.push(key, Kind::Block(root));
        }
        Ok(e)
    }

    fn block_key(&self, node: NodeId) -> Result<f64, QueryError> {
        let rect = self.objects.quadtree().rect(node);
        self.browser.try_region_lower_bound(self.query, &rect)
    }

    fn push(&mut self, key: f64, kind: Kind) {
        self.seq += 1;
        self.heap.push(QEntry { key, seq: self.seq, kind });
        self.stats.queue_pushes += 1;
        self.stats.max_queue = self.stats.max_queue.max(self.heap.len());
    }

    /// Ensures the object has a refiner, creating the zero-hop interval on
    /// first contact. Returns (interval, version).
    fn touch(&mut self, o: ObjectId) -> Result<(silc::DistInterval, u32), QueryError> {
        let vertex = self.objects.vertex(o);
        let state = match self.states.entry(o) {
            MapEntry::Occupied(e) => e.into_mut(),
            MapEntry::Vacant(e) => e.insert(ObjState {
                refiner: RefinableDistance::try_new(self.browser, self.query, vertex)?,
                version: 0,
                confirmed: false,
            }),
        };
        Ok((state.refiner.interval(), state.version))
    }

    /// One refinement step; no-ops (already exact) are not counted as
    /// refinement operations since they touch no quadtree.
    fn refine(&mut self, o: ObjectId) -> Result<(silc::DistInterval, u32), QueryError> {
        let state = self.states.get_mut(&o).expect("refining an untouched object");
        if state.refiner.try_refine(self.browser)? {
            self.stats.refinements += 1;
        }
        state.version += 1;
        Ok((state.refiner.interval(), state.version))
    }

    /// `KMINDIST`: the minimum possible distance of the kth nearest
    /// neighbor given everything currently known — the kth smallest `δ−`
    /// over all discovered objects, floored by the smallest lower bound of
    /// any block still in the queue (an unexpanded block may hide arbitrarily
    /// many objects at its bound). `lows` is the reusable sample buffer.
    fn kmindist(&self, k: usize, lows: &mut Vec<f64>) -> Option<f64> {
        lows.clear();
        lows.extend(self.states.values().map(|s| s.refiner.interval().lo));
        if lows.len() < k {
            return None;
        }
        let (_, kth, _) = lows.select_nth_unstable_by(k - 1, f64::total_cmp);
        let mut bound = *kth;
        for entry in self.heap.iter() {
            if matches!(entry.kind, Kind::Block(_)) {
                bound = bound.min(entry.key);
            }
        }
        Some(bound)
    }
}

/// Infallible [`try_knn_into`] — the panic-at-the-boundary wrapper the
/// in-memory callers use.
///
/// # Panics
/// Panics where [`try_knn_into`] would error (disk failure after retries,
/// checksum mismatch).
pub(crate) fn knn_into<B: DistanceBrowser + ?Sized>(
    browser: &B,
    objects: &ObjectSet,
    query: VertexId,
    k: usize,
    variant: KnnVariant,
    scratch: &mut KnnScratch,
) {
    try_knn_into(browser, objects, query, k, variant, scratch).unwrap_or_else(|e| panic!("{e}"))
}

/// The non-incremental best-first kNN algorithm and its kNN-I / kNN-M
/// variants (paper §6), writing into reusable workspaces.
///
/// The result lands in `scratch.result()`; the free function [`knn`] and
/// [`crate::QuerySession::knn`] are its two callers. On an error the
/// scratch holds a partial (unreported) result and must not be read.
pub(crate) fn try_knn_into<B: DistanceBrowser + ?Sized>(
    browser: &B,
    objects: &ObjectSet,
    query: VertexId,
    k: usize,
    variant: KnnVariant,
    scratch: &mut KnnScratch,
) -> Result<(), QueryError> {
    assert!(k > 0, "k must be positive");
    scratch.begin(k);
    let KnnScratch { heap, states, candidates, lows, leftovers, result } = scratch;
    let mut eng = Engine::new(browser, objects, query, heap, states)?;
    let reported = &mut result.neighbors;
    let mut d0k: Option<f64> = None;
    let use_d0k = matches!(variant, KnnVariant::EarlyEstimate | KnnVariant::MinDist);
    let use_kmindist = matches!(variant, KnnVariant::MinDist);
    let mut pq_nanos = 0u64;

    // Only a δ− strictly beyond this bound is prunable (paper p.22: prune
    // when MinD > Dk) — at equality the object may still be the tied kth
    // neighbor, and dropping it from Q while it sits in L would let a worse
    // object be confirmed past it.
    let enqueue_bound =
        |cands: &CandidateList, d0k: &Option<f64>| cands.dk().min(d0k.unwrap_or(f64::INFINITY));

    while let Some(QEntry { key, kind, .. }) = eng.heap.pop() {
        // Stale object entries (superseded by a refinement) are skipped.
        if let Kind::Object(o, version) = kind {
            let state = &eng.states[&o];
            if state.confirmed || state.version != version {
                continue;
            }
        }
        // Halt: nothing left can improve on the k candidates.
        let t = Instant::now();
        let dk = candidates.dk();
        pq_nanos += t.elapsed().as_nanos() as u64;
        if key > dk {
            break;
        }
        if reported.len() == k {
            break;
        }
        match kind {
            Kind::Block(node) => match eng.objects.quadtree().node(node) {
                NodeView::Leaf(items) => {
                    for &item in items {
                        let o = ObjectId(*eng.objects.quadtree().payload(item));
                        if eng.states.get(&o).is_some_and(|s| s.confirmed) {
                            continue;
                        }
                        let (iv, version) = eng.touch(o)?;
                        let t = Instant::now();
                        if iv.hi < candidates.dk() {
                            candidates.upsert(o, iv);
                            if use_d0k && d0k.is_none() && candidates.is_full() {
                                d0k = Some(candidates.dk());
                            }
                        }
                        let bound = enqueue_bound(candidates, &d0k);
                        pq_nanos += t.elapsed().as_nanos() as u64;
                        if iv.lo <= bound {
                            eng.push(iv.lo, Kind::Object(o, version));
                        }
                    }
                }
                NodeView::Internal(children) => {
                    for child in children {
                        let child_key = eng.block_key(child)?;
                        let t = Instant::now();
                        let bound = enqueue_bound(candidates, &d0k);
                        pq_nanos += t.elapsed().as_nanos() as u64;
                        if child_key < bound {
                            eng.push(child_key, Kind::Block(child));
                        }
                    }
                }
            },
            Kind::Object(o, _) => {
                let iv = eng.states[&o].refiner.interval();
                // kNN-M: confirm without ordering when provably in the top k.
                if use_kmindist && candidates.is_full() {
                    let quick = candidates.kth_lo().is_some_and(|lo| iv.hi <= lo);
                    if quick {
                        if let Some(kmin) = eng.kmindist(k, lows) {
                            eng.stats.kmindist_final = Some(kmin);
                            if iv.hi <= kmin {
                                eng.states.get_mut(&o).unwrap().confirmed = true;
                                eng.stats.kmindist_pruned += 1;
                                let t = Instant::now();
                                candidates.upsert(o, iv);
                                pq_nanos += t.elapsed().as_nanos() as u64;
                                reported.push(Neighbor {
                                    object: o,
                                    vertex: eng.objects.vertex(o),
                                    interval: iv,
                                });
                                continue;
                            }
                        }
                    }
                }
                // Collision test against the next-best element (paper p.23):
                // the top's interval starts at its key, so the intervals are
                // disjoint exactly when δ+(o) < key(top). An exact distance
                // tied with the top's lower bound also wins — everything
                // else is provably no closer (resolves equal-distance ties
                // that refinement cannot separate).
                let no_collision = match eng.heap.peek() {
                    Some(top) => iv.hi < top.key || (iv.is_exact() && iv.hi <= top.key),
                    None => true,
                };
                if no_collision {
                    eng.states.get_mut(&o).unwrap().confirmed = true;
                    let t = Instant::now();
                    candidates.upsert(o, iv);
                    pq_nanos += t.elapsed().as_nanos() as u64;
                    reported.push(Neighbor {
                        object: o,
                        vertex: eng.objects.vertex(o),
                        interval: iv,
                    });
                } else {
                    let t = Instant::now();
                    candidates.remove(o);
                    pq_nanos += t.elapsed().as_nanos() as u64;
                    let (iv, version) = eng.refine(o)?;
                    let t = Instant::now();
                    if iv.hi < candidates.dk() {
                        candidates.upsert(o, iv);
                    }
                    let bound = enqueue_bound(candidates, &d0k);
                    pq_nanos += t.elapsed().as_nanos() as u64;
                    if iv.lo <= bound {
                        eng.push(iv.lo, Kind::Object(o, version));
                    }
                }
            }
        }
    }

    // Fill any remaining slots from L (the paper's "report L"): refine to
    // exact so the filled tail is correctly ordered.
    if reported.len() < k {
        leftovers.clear();
        for (o, _, _) in candidates.iter() {
            if !eng.states.get(&o).is_some_and(|s| s.confirmed) {
                leftovers.push((0.0, o));
            }
        }
        for slot in leftovers.iter_mut() {
            let state = eng.states.get_mut(&slot.1).unwrap();
            slot.0 = state.refiner.try_refine_until_exact(browser)?;
        }
        // Unstable sort: keys are distinct (distance ties broken by the
        // unique object id), and the stable sort would allocate.
        leftovers.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        let need = k - reported.len();
        for &(d, o) in leftovers.iter().take(need) {
            reported.push(Neighbor {
                object: o,
                vertex: eng.objects.vertex(o),
                interval: silc::DistInterval::exact(d),
            });
        }
    }

    // Final statistics. `dk_final` is the tightest *known* upper bound on
    // the kth distance — the exact truth is recomputed by callers that need
    // it (e.g. the estimate-quality figure), outside any timed section.
    eng.stats.pq_nanos = pq_nanos;
    if use_kmindist && eng.stats.kmindist_final.is_none() {
        eng.stats.kmindist_final = eng.kmindist(k, lows);
    }
    eng.stats.d0k = d0k;
    eng.stats.dk_final = reported.iter().map(|n| n.interval.hi).fold(0.0, f64::max);
    result.stats = eng.stats;
    Ok(())
}

/// One-shot wrapper around `knn_into` with a fresh [`KnnScratch`].
///
/// Returns up to `k` neighbors: fewer only when the object set is smaller
/// than `k`. Neighbor intervals always contain the true network distance;
/// for [`KnnVariant::MinDist`] the reporting order is not sorted.
///
/// # Panics
/// Panics where [`try_knn`] would error.
pub fn knn<B: DistanceBrowser + ?Sized>(
    browser: &B,
    objects: &ObjectSet,
    query: VertexId,
    k: usize,
    variant: KnnVariant,
) -> KnnResult {
    try_knn(browser, objects, query, k, variant).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`knn`]: a disk fault that survived the pool's retries or a
/// page that failed its checksum surfaces as a [`QueryError`] instead of a
/// panic. Answers on the `Ok` path are identical to [`knn`]'s.
pub fn try_knn<B: DistanceBrowser + ?Sized>(
    browser: &B,
    objects: &ObjectSet,
    query: VertexId,
    k: usize,
    variant: KnnVariant,
) -> Result<KnnResult, QueryError> {
    let mut scratch = KnnScratch::new();
    try_knn_into(browser, objects, query, k, variant, &mut scratch)?;
    Ok(scratch.into_result())
}

/// The incremental algorithm (INN) over reusable workspaces: best-first
/// with collision-driven refinement but no candidate list, no `Dk`, no
/// pruning. The baseline the paper's queue-size and refinement-count
/// figures are normalized against.
///
/// Being *incremental*, INN honors the distance-browsing contract: each
/// reported neighbor carries its **exact** network distance (a consumer may
/// stop at any point and must be able to act on what it has), so every
/// confirmation pays the full refinement to exactness — the refinements the
/// non-incremental kNN avoids by reporting intervals.
pub(crate) fn inn_into<B: DistanceBrowser + ?Sized>(
    browser: &B,
    objects: &ObjectSet,
    query: VertexId,
    k: usize,
    scratch: &mut KnnScratch,
) {
    try_inn_into(browser, objects, query, k, scratch).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`inn_into`]: the single implementation both entry points run.
/// On an error the scratch holds a partial result and must not be read.
pub(crate) fn try_inn_into<B: DistanceBrowser + ?Sized>(
    browser: &B,
    objects: &ObjectSet,
    query: VertexId,
    k: usize,
    scratch: &mut KnnScratch,
) -> Result<(), QueryError> {
    assert!(k > 0, "k must be positive");
    scratch.begin(k);
    let KnnScratch { heap, states, result, .. } = scratch;
    let mut eng = Engine::new(browser, objects, query, heap, states)?;
    let reported = &mut result.neighbors;

    while let Some(QEntry { kind, .. }) = eng.heap.pop() {
        if reported.len() == k {
            break;
        }
        if let Kind::Object(o, version) = kind {
            let state = &eng.states[&o];
            if state.confirmed || state.version != version {
                continue;
            }
        }
        match kind {
            Kind::Block(node) => match eng.objects.quadtree().node(node) {
                NodeView::Leaf(items) => {
                    for &item in items {
                        let o = ObjectId(*eng.objects.quadtree().payload(item));
                        let (iv, version) = eng.touch(o)?;
                        eng.push(iv.lo, Kind::Object(o, version));
                    }
                }
                NodeView::Internal(children) => {
                    for child in children {
                        let key = eng.block_key(child)?;
                        eng.push(key, Kind::Block(child));
                    }
                }
            },
            Kind::Object(o, _) => {
                let iv = eng.states[&o].refiner.interval();
                let no_collision = match eng.heap.peek() {
                    Some(top) => iv.hi < top.key || (iv.is_exact() && iv.hi <= top.key),
                    None => true,
                };
                if no_collision {
                    // Report with the exact distance (see the doc comment);
                    // each remaining hop is a counted refinement.
                    let state = eng.states.get_mut(&o).unwrap();
                    state.confirmed = true;
                    let before = state.refiner.refinements();
                    let exact = state.refiner.try_refine_until_exact(browser)?;
                    let extra = state.refiner.refinements() - before;
                    eng.stats.refinements += extra;
                    reported.push(Neighbor {
                        object: o,
                        vertex: eng.objects.vertex(o),
                        interval: silc::DistInterval::exact(exact),
                    });
                } else {
                    let (iv, version) = eng.refine(o)?;
                    eng.push(iv.lo, Kind::Object(o, version));
                }
            }
        }
    }

    eng.stats.dk_final = reported.iter().map(|n| n.interval.hi).fold(0.0, f64::max);
    result.stats = eng.stats;
    Ok(())
}

/// One-shot wrapper around `inn_into` with a fresh [`KnnScratch`].
///
/// # Panics
/// Panics where [`try_inn`] would error.
pub fn inn<B: DistanceBrowser + ?Sized>(
    browser: &B,
    objects: &ObjectSet,
    query: VertexId,
    k: usize,
) -> KnnResult {
    try_inn(browser, objects, query, k).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`inn`]: disk faults and checksum failures surface as a
/// [`QueryError`] instead of a panic.
pub fn try_inn<B: DistanceBrowser + ?Sized>(
    browser: &B,
    objects: &ObjectSet,
    query: VertexId,
    k: usize,
) -> Result<KnnResult, QueryError> {
    let mut scratch = KnnScratch::new();
    try_inn_into(browser, objects, query, k, &mut scratch)?;
    Ok(scratch.into_result())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::brute_force_knn;
    use silc::{BuildConfig, SilcIndex};
    use silc_network::generate::{road_network, RoadConfig};
    use std::sync::Arc;

    fn fixture() -> (SilcIndex, ObjectSet) {
        let g =
            Arc::new(road_network(&RoadConfig { vertices: 200, seed: 404, ..Default::default() }));
        let idx =
            SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 9, threads: 0 }).unwrap();
        let objects = ObjectSet::random(&g, 0.15, 9);
        (idx, objects)
    }

    fn check_against_truth(
        result: &KnnResult,
        idx: &SilcIndex,
        objects: &ObjectSet,
        q: VertexId,
        k: usize,
    ) {
        let truth = brute_force_knn(idx.network(), objects, q, k);
        assert_eq!(result.neighbors.len(), truth.len());
        // Distance multisets must agree (object identity can differ on ties).
        let mut got: Vec<f64> = result
            .neighbors
            .iter()
            .map(|n| silc::path::network_distance(idx, q, n.vertex).unwrap())
            .collect();
        got.sort_by(f64::total_cmp);
        let mut want: Vec<f64> = truth.iter().map(|&(_, d)| d).collect();
        want.sort_by(f64::total_cmp);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-6, "distance mismatch: {g} vs {w}");
        }
        // Every reported interval must contain the object's true distance.
        for n in &result.neighbors {
            let d = silc::path::network_distance(idx, q, n.vertex).unwrap();
            assert!(
                n.interval.contains(d)
                    || (d - n.interval.lo).abs() < 1e-6
                    || (n.interval.hi - d).abs() < 1e-6,
                "interval {} misses true distance {d}",
                n.interval
            );
        }
    }

    #[test]
    fn knn_basic_matches_brute_force() {
        let (idx, objects) = fixture();
        for &q in &[0u32, 57, 123, 199] {
            let r = knn(&idx, &objects, VertexId(q), 5, KnnVariant::Basic);
            check_against_truth(&r, &idx, &objects, VertexId(q), 5);
            assert!(r.is_sorted(), "basic kNN must report in order");
        }
    }

    #[test]
    fn knn_variants_agree_with_basic() {
        let (idx, objects) = fixture();
        for &q in &[3u32, 88, 150] {
            for k in [1usize, 4, 10] {
                let basic = knn(&idx, &objects, VertexId(q), k, KnnVariant::Basic);
                for variant in [KnnVariant::EarlyEstimate, KnnVariant::MinDist] {
                    let r = knn(&idx, &objects, VertexId(q), k, variant);
                    check_against_truth(&r, &idx, &objects, VertexId(q), k);
                    assert_eq!(
                        r.object_ids(),
                        basic.object_ids(),
                        "{variant:?} returned a different set for q={q}, k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn inn_matches_brute_force_and_is_sorted() {
        let (idx, objects) = fixture();
        for &q in &[10u32, 77] {
            let r = inn(&idx, &objects, VertexId(q), 8);
            check_against_truth(&r, &idx, &objects, VertexId(q), 8);
            assert!(r.is_sorted());
        }
    }

    #[test]
    fn knn_uses_smaller_queue_than_inn() {
        let (idx, objects) = fixture();
        let mut knn_q = 0usize;
        let mut inn_q = 0usize;
        for &q in &[0u32, 31, 62, 93, 124, 155] {
            knn_q += knn(&idx, &objects, VertexId(q), 10, KnnVariant::Basic).stats.max_queue;
            inn_q += inn(&idx, &objects, VertexId(q), 10).stats.max_queue;
        }
        assert!(knn_q < inn_q, "Dk pruning should shrink the queue: kNN {knn_q} vs INN {inn_q}");
    }

    #[test]
    fn knn_m_skips_refinements() {
        let (idx, objects) = fixture();
        let mut m_refines = 0usize;
        let mut basic_refines = 0usize;
        let mut pruned = 0usize;
        for &q in &[5u32, 50, 95, 140, 185] {
            let m = knn(&idx, &objects, VertexId(q), 10, KnnVariant::MinDist);
            let b = knn(&idx, &objects, VertexId(q), 10, KnnVariant::Basic);
            m_refines += m.stats.refinements;
            basic_refines += b.stats.refinements;
            pruned += m.stats.kmindist_pruned;
        }
        assert!(
            m_refines <= basic_refines,
            "kNN-M refined more than kNN: {m_refines} vs {basic_refines}"
        );
        assert!(pruned > 0, "KMINDIST never confirmed anything");
    }

    #[test]
    fn query_on_object_vertex_returns_it_first() {
        let (idx, objects) = fixture();
        let (o, v) = objects.iter().next().unwrap();
        let r = knn(&idx, &objects, v, 1, KnnVariant::Basic);
        assert_eq!(r.neighbors[0].object, o);
        assert_eq!(r.neighbors[0].interval, silc::DistInterval::exact(0.0));
    }

    #[test]
    fn k_larger_than_object_count_returns_all() {
        let (idx, _) = fixture();
        let objects =
            ObjectSet::from_vertices(idx.network(), vec![VertexId(1), VertexId(2), VertexId(3)], 4);
        let r = knn(&idx, &objects, VertexId(0), 10, KnnVariant::Basic);
        assert_eq!(r.neighbors.len(), 3);
        let r = inn(&idx, &objects, VertexId(0), 10);
        assert_eq!(r.neighbors.len(), 3);
    }

    #[test]
    fn d0k_is_recorded_and_upper_bounds_dk() {
        let (idx, objects) = fixture();
        let r = knn(&idx, &objects, VertexId(42), 10, KnnVariant::EarlyEstimate);
        let d0k = r.stats.d0k.expect("D0k must be set once L fills");
        assert!(
            d0k >= r.stats.dk_final - 1e-9,
            "D0k {d0k} below the true kth distance {}",
            r.stats.dk_final
        );
    }

    #[test]
    fn kmindist_lower_bounds_dk() {
        let (idx, objects) = fixture();
        let r = knn(&idx, &objects, VertexId(42), 10, KnnVariant::MinDist);
        let kmin = r.stats.kmindist_final.expect("KMINDIST must be recorded");
        assert!(
            kmin <= r.stats.dk_final + 1e-9,
            "KMINDIST {kmin} above true kth distance {}",
            r.stats.dk_final
        );
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let (idx, objects) = fixture();
        let _ = knn(&idx, &objects, VertexId(0), 0, KnnVariant::Basic);
    }

    #[test]
    fn exact_distance_ties_terminate() {
        // Two objects on the same vertex have exactly equal distances from
        // every query — refinement can never separate them, so the tie rule
        // must resolve the collision (regression test for an infinite
        // ping-pong between two exact intervals).
        let (idx, _) = fixture();
        let objects = ObjectSet::from_vertices(
            idx.network(),
            vec![VertexId(10), VertexId(10), VertexId(120)],
            4,
        );
        for variant in [KnnVariant::Basic, KnnVariant::EarlyEstimate, KnnVariant::MinDist] {
            let r = knn(&idx, &objects, VertexId(50), 2, variant);
            assert_eq!(r.neighbors.len(), 2, "{variant:?} lost a tied neighbor");
        }
        let r = inn(&idx, &objects, VertexId(50), 3);
        assert_eq!(r.neighbors.len(), 3);
        // The two co-located objects must both appear when they are nearest.
        let r = knn(&idx, &objects, VertexId(10), 2, KnnVariant::Basic);
        let mut ids = r.object_ids();
        ids.sort();
        assert_eq!(ids, vec![ObjectId(0), ObjectId(1)]);
    }
}
