//! ε-approximate kNN over an approximate distance oracle.
//!
//! The paper's trade-off table (p.11) pits the exact SILC index against the
//! PCP distance oracle; this module is the query seam that makes the two
//! halves interchangeable in the serving stack. [`ApproxDistanceOracle`]
//! abstracts "answers any vertex-pair distance within a relative error ε" —
//! implemented by both the memory and the disk-resident PCP oracles — and
//! [`approx_knn`] runs IER-style k-nearest-neighbor over it: candidates are
//! drawn in Euclidean order from the object quadtree, each candidate's
//! network distance is estimated with **one oracle probe** instead of a
//! shortest-path computation, and the scan stops once the scaled Euclidean
//! lower bound of the next candidate clears the kth candidate's distance
//! upper bound.
//!
//! ## What the result guarantees
//!
//! With a sound oracle, every reported [`crate::Neighbor`] carries an
//! interval containing its true network distance, built from two
//! independent bounds — the oracle's `[d̃/(1+ε), d̃/(1−ε)]` band and the
//! network's Euclidean lower bound `dE · min_ratio` — combined by
//! intersection, falling back to the gap interval when float noise (or an
//! oracle past its bound) makes them disjoint, the same honest-combination
//! rule `silc::refine` uses. The ε of each band is **per candidate**:
//! [`ApproxDistanceOracle::distance_with_epsilon`] lets oracles with
//! per-pair error caps (the v2 PCP oracles) answer the covering pair's own
//! cap, so intervals are typically far tighter than the global worst case
//! would allow. Ranking is by the oracle estimate, so the i-th reported
//! true distance exceeds the exact i-th distance by at most a factor
//! `(1+ε)/(1−ε)` of the global ε — the ε-closeness the `pcp_bounds_fuzz`
//! suite locks.

use crate::objects::{ObjectId, ObjectSet};
use crate::result::{KnnResult, Neighbor, QueryStats};
use silc::{DistInterval, QueryError};
use silc_network::{SpatialNetwork, VertexId};
use silc_pcp::PcpError;
use silc_quadtree::NearestScratch;
use silc_storage::PageStore;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An oracle answering vertex-pair network distances within a bounded
/// relative error — the query stack's view of `silc_pcp`'s memory and disk
/// oracles (and anything else that can estimate distances).
pub trait ApproxDistanceOracle: Send + Sync {
    /// Approximate network distance `u → v` (exact 0 when `u == v`).
    fn distance(&self, u: VertexId, v: VertexId) -> f64;

    /// The guaranteed relative error bound ε of [`Self::distance`].
    fn epsilon(&self) -> f64;

    /// Approximate distance together with the error bound that holds for
    /// *this* query — `(estimate, ε)`. Oracles with per-pair error caps
    /// (the v2 PCP oracles) override this to answer the covering pair's own
    /// cap, which is what lets [`approx_knn`] intervals tighten below the
    /// global worst case; the default falls back to the global ε.
    fn distance_with_epsilon(&self, u: VertexId, v: VertexId) -> (f64, f64) {
        (self.distance(u, v), self.epsilon())
    }

    /// Fallible flavor of [`Self::distance_with_epsilon`]: disk-backed
    /// oracles surface I/O and corruption as a typed [`QueryError`] instead
    /// of panicking. Infallible (in-memory) oracles keep the default, which
    /// cannot fail.
    fn try_distance_with_epsilon(
        &self,
        u: VertexId,
        v: VertexId,
    ) -> Result<(f64, f64), QueryError> {
        Ok(self.distance_with_epsilon(u, v))
    }
}

/// Lifts a PCP oracle error into the query stack's error type. Corruption
/// stays corruption (the page it names travels in the detail string); plain
/// I/O trouble stays I/O.
fn oracle_err(e: PcpError) -> QueryError {
    match e {
        PcpError::Io(io) => QueryError::Io(io),
        PcpError::Corrupt(detail) => QueryError::Corrupt { page: None, detail },
    }
}

impl ApproxDistanceOracle for silc_pcp::DistanceOracle {
    fn distance(&self, u: VertexId, v: VertexId) -> f64 {
        silc_pcp::DistanceOracle::distance(self, u, v)
    }

    fn epsilon(&self) -> f64 {
        silc_pcp::DistanceOracle::epsilon(self)
    }

    fn distance_with_epsilon(&self, u: VertexId, v: VertexId) -> (f64, f64) {
        silc_pcp::DistanceOracle::distance_with_epsilon(self, u, v)
    }
}

impl<S: PageStore> ApproxDistanceOracle for silc_pcp::DiskDistanceOracle<S> {
    fn distance(&self, u: VertexId, v: VertexId) -> f64 {
        silc_pcp::DiskDistanceOracle::distance(self, u, v)
    }

    fn epsilon(&self) -> f64 {
        silc_pcp::DiskDistanceOracle::epsilon(self)
    }

    fn distance_with_epsilon(&self, u: VertexId, v: VertexId) -> (f64, f64) {
        silc_pcp::DiskDistanceOracle::distance_with_epsilon(self, u, v)
    }

    fn try_distance_with_epsilon(
        &self,
        u: VertexId,
        v: VertexId,
    ) -> Result<(f64, f64), QueryError> {
        silc_pcp::DiskDistanceOracle::try_distance_with_epsilon(self, u, v).map_err(oracle_err)
    }
}

/// Max-heap entry of the k-best buffer: ranked by the oracle estimate,
/// deterministic ties by object id.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ApproxBest {
    approx: f64,
    object: ObjectId,
    interval: DistInterval,
}

impl Eq for ApproxBest {}

impl Ord for ApproxBest {
    fn cmp(&self, other: &Self) -> Ordering {
        self.approx.total_cmp(&other.approx).then_with(|| self.object.cmp(&other.object))
    }
}

impl PartialOrd for ApproxBest {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The reusable workspaces of [`approx_knn`]: the Euclidean search heap,
/// the k-best buffer, the sorting sink, and the result. Create once (per
/// session / thread); after the structures have grown to a workload's
/// steady-state size, further queries allocate nothing.
pub struct ApproxScratch {
    nn: NearestScratch,
    best: BinaryHeap<ApproxBest>,
    /// Sink for sorting `best` without consuming its allocation.
    sorted: Vec<ApproxBest>,
    result: KnnResult,
}

impl Default for ApproxScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl ApproxScratch {
    /// Empty workspaces; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        ApproxScratch {
            nn: NearestScratch::new(),
            best: BinaryHeap::new(),
            sorted: Vec::new(),
            result: KnnResult::default(),
        }
    }

    /// The result of the most recent query run through this scratch.
    pub fn result(&self) -> &KnnResult {
        &self.result
    }

    /// Consumes the scratch, yielding the last result — the one-shot path.
    pub fn into_result(self) -> KnnResult {
        self.result
    }

    /// Clears per-query state (allocations are retained).
    fn begin(&mut self) {
        self.best.clear();
        self.sorted.clear();
        self.result.neighbors.clear();
        self.result.stats = QueryStats::default();
    }
}

/// The true-distance interval of one candidate: the oracle's ε band around
/// its estimate, intersected with the network's scaled Euclidean lower
/// bound. Disjoint bounds (float noise, or an oracle a hair past its
/// first-order ε) fall back to the gap interval — the honest-combination
/// rule of `silc::refine`.
fn candidate_interval(approx: f64, eps: f64, euclid_lo: f64) -> DistInterval {
    if approx <= 0.0 && euclid_lo <= 0.0 {
        // Co-located query and object: exactly 0. A zero estimate with a
        // positive Euclidean bound instead falls through to the gap rule —
        // the oracle may be within its relative contract while the network
        // proves the distance positive.
        return DistInterval::exact(0.0);
    }
    let band = if approx <= 0.0 {
        DistInterval::exact(0.0)
    } else {
        let hi = if eps < 1.0 { approx / (1.0 - eps) } else { f64::INFINITY };
        DistInterval::new(approx / (1.0 + eps), hi)
    };
    let lower = DistInterval::new(euclid_lo, f64::INFINITY);
    band.intersect(&lower).unwrap_or_else(|| {
        let gap_lo = band.hi.min(lower.hi);
        let gap_hi = band.lo.max(lower.lo);
        DistInterval::new(gap_lo, gap_hi)
    })
}

/// Panic-at-the-boundary wrapper around [`try_approx_knn_into`] for callers
/// that treat oracle I/O failure as fatal; the fallible core is the single
/// implementation, so both paths produce bit-identical answers.
pub(crate) fn approx_knn_into<O: ApproxDistanceOracle + ?Sized>(
    oracle: &O,
    network: &SpatialNetwork,
    objects: &ObjectSet,
    query: VertexId,
    k: usize,
    scratch: &mut ApproxScratch,
) {
    try_approx_knn_into(oracle, network, objects, query, k, scratch)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// The ε-approximate kNN core, writing into reusable workspaces.
///
/// The result lands in `scratch.result()`; the free function [`approx_knn`]
/// and [`crate::QuerySession::approx_knn`] are its callers. Oracle probe
/// failures (disk faults, checksum mismatches) surface as the typed error;
/// the scratch then holds no meaningful result.
pub(crate) fn try_approx_knn_into<O: ApproxDistanceOracle + ?Sized>(
    oracle: &O,
    network: &SpatialNetwork,
    objects: &ObjectSet,
    query: VertexId,
    k: usize,
    scratch: &mut ApproxScratch,
) -> Result<(), QueryError> {
    assert!(k > 0, "k must be positive");
    scratch.begin();
    let ApproxScratch { nn, best, sorted, result } = scratch;
    let min_ratio = network.min_weight_ratio();
    let qpos = network.position(query);
    let mut stats = QueryStats::default();

    // Largest distance upper bound among the current k best — the sound
    // termination threshold. Recomputed only when the buffer changes (not
    // per candidate drawn). While the buffer is short, or while ε ≥ 1 makes
    // every upper bound infinite (see the function docs), it stays ∞ and
    // the scan cannot prune.
    let mut kth_hi = f64::INFINITY;
    for (item, euclid) in objects.quadtree().nearest_with(qpos, nn) {
        let euclid_lo = euclid * min_ratio;
        // Every undrawn object is at least `euclid_lo` away; once that
        // clears the kth candidate's distance upper bound, nothing further
        // can displace the current k.
        if euclid_lo > kth_hi {
            break;
        }
        stats.index_queries += 1;
        let o = ObjectId(*objects.quadtree().payload(item));
        // Per-candidate bound: oracles with per-pair caps answer the
        // covering pair's own ε here, so each interval is as tight as the
        // construction can prove for *this* candidate.
        let (approx, eps) = oracle.try_distance_with_epsilon(query, objects.vertex(o))?;
        let interval = candidate_interval(approx, eps, euclid_lo);
        let entry = ApproxBest { approx, object: o, interval };
        let changed = if best.len() < k {
            best.push(entry);
            true
        } else if entry < *best.peek().expect("k > 0") {
            best.push(entry);
            best.pop();
            true
        } else {
            false
        };
        if changed && best.len() == k {
            kth_hi = best.iter().map(|b| b.interval.hi).fold(0.0, f64::max);
        }
    }

    sorted.clear();
    sorted.extend(best.drain());
    sorted.sort_unstable();
    result.neighbors.extend(sorted.iter().map(|b| Neighbor {
        object: b.object,
        vertex: objects.vertex(b.object),
        interval: b.interval,
    }));
    stats.dk_final = sorted.iter().map(|b| b.interval.hi).fold(0.0, f64::max);
    result.stats = stats;
    Ok(())
}

/// One-shot wrapper around the ε-approximate kNN core with a fresh
/// [`ApproxScratch`].
///
/// Returns up to `k` neighbors in non-decreasing order of the oracle's
/// distance estimate (fewer only when the object set is smaller than `k`);
/// see the module docs for the ε guarantee their intervals carry.
///
/// **Degenerate regime:** when `oracle.epsilon() >= 1` the oracle admits a
/// relative error of 100 % or more, so its estimates carry *no* distance
/// upper bounds — no candidate can ever be proven unbeatable, and the scan
/// soundly visits every object (one `O(log n)` oracle probe each; still no
/// shortest-path computations). Early termination needs an oracle built
/// accurate enough that ε < 1 — for the PCP oracle, a large enough
/// separation `s` relative to the network stretch.
pub fn approx_knn<O: ApproxDistanceOracle + ?Sized>(
    oracle: &O,
    network: &SpatialNetwork,
    objects: &ObjectSet,
    query: VertexId,
    k: usize,
) -> KnnResult {
    let mut scratch = ApproxScratch::new();
    approx_knn_into(oracle, network, objects, query, k, &mut scratch);
    scratch.into_result()
}

/// Fallible one-shot flavor of [`approx_knn`]: oracle probe failures (disk
/// faults, checksum mismatches) come back as a typed [`QueryError`] instead
/// of a panic. On `Ok` the result is bit-identical to [`approx_knn`]'s.
pub fn try_approx_knn<O: ApproxDistanceOracle + ?Sized>(
    oracle: &O,
    network: &SpatialNetwork,
    objects: &ObjectSet,
    query: VertexId,
    k: usize,
) -> Result<KnnResult, QueryError> {
    let mut scratch = ApproxScratch::new();
    try_approx_knn_into(oracle, network, objects, query, k, &mut scratch)?;
    Ok(scratch.into_result())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::brute_force_knn;
    use silc_network::generate::{road_network, RoadConfig};
    use silc_network::{dijkstra, SpatialNetwork};
    use silc_pcp::{write_oracle, DiskDistanceOracle, DistanceOracle};

    fn fixture() -> (SpatialNetwork, ObjectSet, DistanceOracle) {
        let g = road_network(&RoadConfig { vertices: 160, seed: 2024, ..Default::default() });
        let objects = ObjectSet::random(&g, 0.15, 5);
        let oracle = DistanceOracle::build(&g, 10, 12.0);
        (g, objects, oracle)
    }

    /// Rank-wise ε-closeness: the i-th reported true distance may exceed the
    /// exact i-th distance by at most (1+e)/(1−e), with the empirical-slack
    /// e the oracle tests allow (the 4t/s bound is first-order).
    fn check_eps_close(
        g: &SpatialNetwork,
        objects: &ObjectSet,
        q: VertexId,
        k: usize,
        r: &KnnResult,
        eps: f64,
    ) {
        let truth = brute_force_knn(g, objects, q, k);
        assert_eq!(r.neighbors.len(), truth.len());
        let e = (1.5 * eps + 0.05).min(0.95);
        let factor = (1.0 + e) / (1.0 - e);
        for (i, (n, &(_, exact))) in r.neighbors.iter().zip(&truth).enumerate() {
            let d = dijkstra::distance(g, q, n.vertex).unwrap();
            assert!(
                d <= exact * factor + 1e-9,
                "rank {i}: reported true distance {d} vs exact {exact} exceeds factor {factor}"
            );
            assert!(
                n.interval.contains(d) || n.interval.lo - d < e * d + 1e-9,
                "rank {i}: interval {} far from true distance {d}",
                n.interval
            );
        }
    }

    #[test]
    fn approx_knn_is_eps_close_to_exact() {
        let (g, objects, oracle) = fixture();
        for &q in &[0u32, 40, 81, 159] {
            for k in [1usize, 4, 9] {
                let r = approx_knn(&oracle, &g, &objects, VertexId(q), k);
                check_eps_close(&g, &objects, VertexId(q), k, &r, oracle.epsilon());
                assert!(r.stats.index_queries >= r.neighbors.len());
            }
        }
    }

    #[test]
    fn memory_and_disk_oracles_answer_identically() {
        let (g, objects, oracle) = fixture();
        let dir = std::env::temp_dir().join("silc-approx-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("approx.pcp");
        write_oracle(&oracle, &path).unwrap();
        let disk = DiskDistanceOracle::open(&path, 0.3).unwrap();
        for &q in &[5u32, 100] {
            let a = approx_knn(&oracle, &g, &objects, VertexId(q), 6);
            let b = approx_knn(&disk, &g, &objects, VertexId(q), 6);
            assert_eq!(a.neighbors.len(), b.neighbors.len());
            for (x, y) in a.neighbors.iter().zip(&b.neighbors) {
                assert_eq!(x.object, y.object);
                assert_eq!(x.interval.lo.to_bits(), y.interval.lo.to_bits());
                assert_eq!(x.interval.hi.to_bits(), y.interval.hi.to_bits());
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn k_larger_than_object_count_returns_all() {
        let (g, _, oracle) = fixture();
        let objects = ObjectSet::from_vertices(&g, vec![VertexId(1), VertexId(2), VertexId(3)], 4);
        let r = approx_knn(&oracle, &g, &objects, VertexId(0), 10);
        assert_eq!(r.neighbors.len(), 3);
    }

    #[test]
    fn query_on_object_vertex_returns_it_first() {
        let (g, objects, oracle) = fixture();
        let (o, v) = objects.iter().next().unwrap();
        let r = approx_knn(&oracle, &g, &objects, v, 1);
        assert_eq!(r.neighbors[0].object, o);
        assert_eq!(r.neighbors[0].interval, DistInterval::exact(0.0));
    }

    #[test]
    fn results_are_sorted_by_estimate() {
        let (g, objects, oracle) = fixture();
        let q = VertexId(33);
        let r = approx_knn(&oracle, &g, &objects, q, 8);
        let estimates: Vec<f64> =
            r.neighbors.iter().map(|n| oracle.distance(q, n.vertex)).collect();
        assert!(
            estimates.windows(2).all(|w| w[0] <= w[1]),
            "reporting order must be non-decreasing in the oracle estimate: {estimates:?}"
        );
    }

    #[test]
    fn candidate_interval_combines_honestly() {
        // Oracle band wins when it is tighter than the Euclidean bound.
        let iv = candidate_interval(10.0, 0.25, 2.0);
        assert!((iv.lo - 8.0).abs() < 1e-12);
        assert!((iv.hi - 10.0 / 0.75).abs() < 1e-12);
        // The Euclidean lower bound tightens a loose band.
        let iv = candidate_interval(10.0, 0.25, 9.0);
        assert_eq!(iv.lo, 9.0);
        // Disjoint bounds yield the gap interval, not a crash.
        let iv = candidate_interval(10.0, 0.1, 20.0);
        assert!((iv.lo - 10.0 / 0.9).abs() < 1e-12);
        assert_eq!(iv.hi, 20.0);
        // ε ≥ 1 leaves the upper side unbounded.
        let iv = candidate_interval(10.0, 1.5, 0.0);
        assert_eq!(iv.hi, f64::INFINITY);
        // A zero estimate is exact only when the Euclidean bound agrees.
        assert_eq!(candidate_interval(0.0, 0.5, 0.0), DistInterval::exact(0.0));
        // A zero estimate for spatially distinct endpoints keeps the
        // Euclidean evidence: the honest gap interval, not a false exact 0.
        let iv = candidate_interval(0.0, 2.0, 3.0);
        assert_eq!(iv, DistInterval::new(0.0, 3.0));
    }

    #[test]
    fn vacuous_epsilon_scans_every_object_and_tight_epsilon_prunes() {
        // ε ≥ 1 gives no distance upper bounds, so the scan cannot prune:
        // it must (soundly) visit the whole object set. A tight-ε oracle
        // over the same objects terminates early. Locks the documented
        // degenerate regime.
        struct FixedEps<'a>(&'a DistanceOracle, f64);
        impl ApproxDistanceOracle for FixedEps<'_> {
            fn distance(&self, u: VertexId, v: VertexId) -> f64 {
                self.0.distance(u, v)
            }
            fn epsilon(&self) -> f64 {
                self.1
            }
        }
        let (g, objects, oracle) = fixture();
        let q = VertexId(70);
        let vacuous = approx_knn(&FixedEps(&oracle, 1.5), &g, &objects, q, 3);
        assert_eq!(
            vacuous.stats.index_queries,
            objects.len(),
            "with ε ≥ 1 every object must be probed"
        );
        let tight = approx_knn(&FixedEps(&oracle, 0.2), &g, &objects, q, 3);
        assert!(
            tight.stats.index_queries < objects.len(),
            "a tight ε must let the Euclidean bound terminate the scan early \
             ({} of {} probed)",
            tight.stats.index_queries,
            objects.len()
        );
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let (g, objects, oracle) = fixture();
        let _ = approx_knn(&oracle, &g, &objects, VertexId(0), 0);
    }
}
