//! The [`Routable`] seam: one kNN dispatch path over both engine shapes.
//!
//! A serving front-end (e.g. `silc-server`) wants to answer "the k nearest
//! objects of `q`, with whatever completeness the backing index can
//! certify" without caring whether the index behind it is a single
//! [`QueryEngine`] or a sharded [`PartitionedEngine`]. This module is that
//! seam:
//!
//! * [`Routable`] — the engine side: anything that can open a per-thread
//!   routing session. Implemented by [`QueryEngine`] (over any
//!   [`DistanceBrowser`]) and by [`PartitionedEngine`].
//! * [`RoutingSession`] — the per-worker side: a fallible kNN into a
//!   reusable [`RoutedAnswer`], so steady-state dispatch stays
//!   allocation-light just like the concrete sessions underneath.
//!
//! Answers are expressed in the partitioned router's vocabulary
//! ([`PartitionedNeighbor`]: object, vertex, sound interval, shard) because
//! it is the richer of the two: a single-engine answer is the degenerate
//! case — every neighbor in shard `0`, `complete` always `true`, `degraded`
//! always empty. Both impls are locked to their concrete sessions
//! bit-for-bit by the tests below.

use crate::knn::KnnVariant;
use crate::router::{PartitionedEngine, PartitionedNeighbor, PartitionedSession};
use crate::session::{QueryEngine, QuerySession};
use silc::{DistanceBrowser, QueryError};
use silc_network::{SpatialNetwork, VertexId};

/// A routed kNN answer: the common denominator of [`QuerySession`] and
/// [`PartitionedSession`] results. Reused across calls by
/// [`RoutingSession::try_knn`]; `clone` it to keep one.
#[derive(Debug, Clone, Default)]
pub struct RoutedAnswer {
    /// Neighbors in the backing algorithm's confirmation order.
    pub neighbors: Vec<PartitionedNeighbor>,
    /// `true` when the reported distance multiset provably equals the
    /// exact global kNN multiset (always `true` for a single engine on a
    /// healthy index).
    pub complete: bool,
    /// Shards whose probes failed while answering (sorted, deduplicated;
    /// always empty for a single engine).
    pub degraded: Vec<u32>,
}

/// The engine side of the seam: opens per-worker routing sessions.
pub trait Routable: Send + Sync {
    /// The network queries are posed against (vertex-id validation,
    /// Morton batching).
    fn network(&self) -> &SpatialNetwork;

    /// Opens a per-thread session owning its reusable workspaces.
    fn routing_session(&self) -> Box<dyn RoutingSession>;
}

/// The per-worker side of the seam. Not `Sync` — one session per worker,
/// like the concrete sessions it wraps.
pub trait RoutingSession: Send {
    /// The k nearest objects of `q`, written into `out` (buffers reused).
    /// Errors mirror the fallible paths of the backing session; on `Err`
    /// the content of `out` is unspecified.
    fn try_knn(&mut self, q: VertexId, k: usize, out: &mut RoutedAnswer) -> Result<(), QueryError>;
}

/// [`QuerySession`] adapter: kNN (Basic) on the engine's single index.
struct EngineRouting<B: DistanceBrowser + ?Sized> {
    session: QuerySession<B>,
}

impl<B: DistanceBrowser + Send + Sync + ?Sized> RoutingSession for EngineRouting<B> {
    fn try_knn(&mut self, q: VertexId, k: usize, out: &mut RoutedAnswer) -> Result<(), QueryError> {
        let r = self.session.try_knn(q, k, KnnVariant::Basic)?;
        out.neighbors.clear();
        out.neighbors.extend(r.neighbors.iter().map(|n| PartitionedNeighbor {
            object: n.object,
            vertex: n.vertex,
            interval: n.interval,
            shard: 0,
        }));
        out.complete = true;
        out.degraded.clear();
        Ok(())
    }
}

impl<B: DistanceBrowser + Send + Sync + ?Sized + 'static> Routable for QueryEngine<B> {
    fn network(&self) -> &SpatialNetwork {
        self.browser().network()
    }

    fn routing_session(&self) -> Box<dyn RoutingSession> {
        Box::new(EngineRouting { session: self.session() })
    }
}

/// [`PartitionedSession`] adapter: the cross-shard router.
struct PartitionedRouting {
    session: PartitionedSession,
}

impl RoutingSession for PartitionedRouting {
    fn try_knn(&mut self, q: VertexId, k: usize, out: &mut RoutedAnswer) -> Result<(), QueryError> {
        // The router is infallible by design: a failing shard degrades the
        // answer (reported in `degraded`) instead of failing the query.
        let r = self.session.knn(q, k);
        out.neighbors.clear();
        out.neighbors.extend_from_slice(&r.neighbors);
        out.complete = r.complete;
        out.degraded.clear();
        out.degraded.extend_from_slice(&r.degraded);
        Ok(())
    }
}

impl Routable for PartitionedEngine {
    fn network(&self) -> &SpatialNetwork {
        self.index().network()
    }

    fn routing_session(&self) -> Box<dyn RoutingSession> {
        Box::new(PartitionedRouting { session: self.session() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objects::ObjectSet;
    use silc::partitioned::{PartitionedBuildConfig, PartitionedSilcIndex};
    use silc::{BuildConfig, SilcIndex};
    use silc_network::generate::{road_network, RoadConfig};
    use silc_network::PartitionConfig;
    use std::sync::Arc;

    #[test]
    fn engine_seam_is_bit_identical_to_knn_basic() {
        let g =
            Arc::new(road_network(&RoadConfig { vertices: 160, seed: 311, ..Default::default() }));
        let idx = Arc::new(
            SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 9, threads: 0 }).unwrap(),
        );
        let objects = Arc::new(ObjectSet::random(&g, 0.1, 5));
        let engine = QueryEngine::new(idx, objects);
        let mut concrete = engine.session();
        let mut routed = engine.routing_session();
        let mut out = RoutedAnswer::default();
        for &q in &[0u32, 41, 159] {
            for k in [1usize, 4, 9] {
                routed.try_knn(VertexId(q), k, &mut out).unwrap();
                let want = concrete.knn(VertexId(q), k, KnnVariant::Basic);
                assert!(out.complete && out.degraded.is_empty());
                assert_eq!(out.neighbors.len(), want.neighbors.len());
                for (a, b) in out.neighbors.iter().zip(&want.neighbors) {
                    assert_eq!((a.object, a.vertex, a.shard), (b.object, b.vertex, 0));
                    assert_eq!(a.interval.lo.to_bits(), b.interval.lo.to_bits());
                    assert_eq!(a.interval.hi.to_bits(), b.interval.hi.to_bits());
                }
            }
        }
    }

    #[test]
    fn partitioned_seam_is_bit_identical_to_router() {
        let g =
            Arc::new(road_network(&RoadConfig { vertices: 220, seed: 62, ..Default::default() }));
        let dir = std::env::temp_dir().join("silc-routable-seam");
        std::fs::remove_dir_all(&dir).ok();
        let cfg = PartitionedBuildConfig {
            partition: PartitionConfig { shards: 4, ..Default::default() },
            grid_exponent: 9,
            threads: 1,
            cache_fraction: 0.5,
        };
        let idx = Arc::new(PartitionedSilcIndex::build_in_dir(g.clone(), &dir, &cfg).unwrap());
        let objects = Arc::new(ObjectSet::random(&g, 0.1, 13));
        let engine = PartitionedEngine::new(idx, objects);
        let mut concrete = engine.session();
        let mut routed = engine.routing_session();
        let mut out = RoutedAnswer::default();
        for &q in &[3u32, 100, 219] {
            for k in [1usize, 5] {
                routed.try_knn(VertexId(q), k, &mut out).unwrap();
                let want = concrete.knn(VertexId(q), k);
                assert_eq!(out.complete, want.complete);
                assert_eq!(out.degraded, want.degraded);
                assert_eq!(out.neighbors.len(), want.neighbors.len());
                for (a, b) in out.neighbors.iter().zip(&want.neighbors) {
                    assert_eq!((a.object, a.vertex, a.shard), (b.object, b.vertex, b.shard));
                    assert_eq!(a.interval.lo.to_bits(), b.interval.lo.to_bits());
                    assert_eq!(a.interval.hi.to_bits(), b.interval.hi.to_bits());
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
