//! Edge objects: the paper's second input-object type (p.21).
//!
//! An object on an edge `(u, v)` at fraction `t` of its length (a house
//! along a road segment) is reached either through `u` or through `v`:
//!
//! ```text
//! d(q, o) = min( d(q,u) + t·w(u,v),  d(q,v) + (1−t)·w(v,u) )
//! ```
//!
//! [`EdgeObjectDistance`] carries one [`RefinableDistance`] per endpoint and
//! combines their intervals, refining whichever side currently blocks the
//! answer — the same progressive-refinement contract as vertex objects, so
//! edge objects plug into interval-based query processing unchanged.

use silc::refine::RefinableDistance;
use silc::{DistInterval, DistanceBrowser};
use silc_network::VertexId;

/// An object living on a directed pair of road edges `u ↔ v`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeObject {
    /// One endpoint of the segment.
    pub u: VertexId,
    /// The other endpoint.
    pub v: VertexId,
    /// Position along the segment as a fraction of the edge weight:
    /// `0.0` = at `u`, `1.0` = at `v`.
    pub t: f64,
}

impl EdgeObject {
    /// Creates an edge object.
    ///
    /// # Panics
    /// Panics if `t` is outside `[0, 1]` or the endpoints coincide.
    pub fn new(u: VertexId, v: VertexId, t: f64) -> Self {
        assert!((0.0..=1.0).contains(&t), "edge fraction must be in [0, 1], got {t}");
        assert_ne!(u, v, "edge objects need two distinct endpoints");
        EdgeObject { u, v, t }
    }
}

/// A progressively refinable network distance from a query vertex to an
/// [`EdgeObject`].
#[derive(Debug, Clone)]
pub struct EdgeObjectDistance {
    via_u: RefinableDistance,
    via_v: RefinableDistance,
    /// Cost from `u` to the object along the edge.
    tail_u: f64,
    /// Cost from `v` to the object along the edge.
    tail_v: f64,
}

impl EdgeObjectDistance {
    /// Starts refinement toward the object.
    ///
    /// # Panics
    /// Panics if the network has no edge between the object's endpoints.
    pub fn new<B: DistanceBrowser + ?Sized>(b: &B, query: VertexId, object: EdgeObject) -> Self {
        let w_uv = b
            .network()
            .edge_weight(object.u, object.v)
            .expect("edge object must lie on a real edge");
        let w_vu = b.network().edge_weight(object.v, object.u).unwrap_or(w_uv);
        EdgeObjectDistance {
            via_u: RefinableDistance::new(b, query, object.u),
            via_v: RefinableDistance::new(b, query, object.v),
            tail_u: object.t * w_uv,
            tail_v: (1.0 - object.t) * w_vu,
        }
    }

    /// The current interval for `d(q, o)`: the min-combination of the two
    /// endpoint intervals plus their fixed tails.
    pub fn interval(&self) -> DistInterval {
        let a = self.via_u.interval().offset(self.tail_u);
        let b = self.via_v.interval().offset(self.tail_v);
        DistInterval::new(a.lo.min(b.lo), a.hi.min(b.hi))
    }

    /// Is the distance known exactly?
    pub fn is_exact(&self) -> bool {
        self.interval().is_exact() || (self.via_u.is_exact() && self.via_v.is_exact())
    }

    /// Total refinement steps taken on either side.
    pub fn refinements(&self) -> usize {
        self.via_u.refinements() + self.via_v.refinements()
    }

    /// One refinement step on the side that currently constrains the
    /// answer the least (the wider contributor). Returns `false` when
    /// exact.
    pub fn refine<B: DistanceBrowser + ?Sized>(&mut self, b: &B) -> bool {
        if self.is_exact() {
            return false;
        }
        let wu = if self.via_u.is_exact() { -1.0 } else { self.via_u.interval().width() };
        let wv = if self.via_v.is_exact() { -1.0 } else { self.via_v.interval().width() };
        // Branches differ in refinement order; short-circuiting stops at
        // the first side that makes progress.
        #[allow(clippy::if_same_then_else)]
        if wu >= wv {
            self.via_u.refine(b) || self.via_v.refine(b)
        } else {
            self.via_v.refine(b) || self.via_u.refine(b)
        }
    }

    /// Refines both sides to exactness and returns the distance.
    pub fn refine_until_exact<B: DistanceBrowser + ?Sized>(&mut self, b: &B) -> f64 {
        let du = self.via_u.refine_until_exact(b) + self.tail_u;
        let dv = self.via_v.refine_until_exact(b) + self.tail_v;
        du.min(dv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silc::{BuildConfig, SilcIndex};
    use silc_network::dijkstra;
    use silc_network::generate::{road_network, RoadConfig};
    use std::sync::Arc;

    fn fixture() -> SilcIndex {
        let g =
            Arc::new(road_network(&RoadConfig { vertices: 150, seed: 8, ..Default::default() }));
        SilcIndex::build(g, &BuildConfig { grid_exponent: 9, threads: 0 }).unwrap()
    }

    fn some_edge(idx: &SilcIndex) -> (VertexId, VertexId, f64) {
        let g = idx.network();
        let u = VertexId(40);
        let (v, w) = g.out_edges(u).next().expect("vertex has edges");
        (u, v, w)
    }

    fn truth(idx: &SilcIndex, q: VertexId, o: EdgeObject) -> f64 {
        let g = idx.network();
        let w_uv = g.edge_weight(o.u, o.v).unwrap();
        let w_vu = g.edge_weight(o.v, o.u).unwrap();
        let via_u = dijkstra::distance(g, q, o.u).unwrap() + o.t * w_uv;
        let via_v = dijkstra::distance(g, q, o.v).unwrap() + (1.0 - o.t) * w_vu;
        via_u.min(via_v)
    }

    #[test]
    fn exact_distance_matches_both_route_minimum() {
        let idx = fixture();
        let (u, v, _) = some_edge(&idx);
        for t in [0.0, 0.25, 0.5, 0.9, 1.0] {
            let o = EdgeObject::new(u, v, t);
            for q in [VertexId(0), VertexId(75), VertexId(149)] {
                let mut d = EdgeObjectDistance::new(&idx, q, o);
                let got = d.refine_until_exact(&idx);
                let want = truth(&idx, q, o);
                assert!((got - want).abs() < 1e-9, "t={t}, q={q}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn interval_brackets_truth_through_refinement() {
        let idx = fixture();
        let (u, v, _) = some_edge(&idx);
        let o = EdgeObject::new(u, v, 0.3);
        let q = VertexId(120);
        let want = truth(&idx, q, o);
        let mut d = EdgeObjectDistance::new(&idx, q, o);
        let mut steps = 0;
        loop {
            let iv = d.interval();
            assert!(
                iv.lo <= want + 1e-9 && iv.hi >= want - 1e-9,
                "{iv} lost true distance {want} after {steps} steps"
            );
            if !d.refine(&idx) {
                break;
            }
            steps += 1;
            assert!(steps <= 2 * idx.network().vertex_count(), "refinement must terminate");
        }
        assert!((d.interval().lo - want).abs() < 1e-9);
    }

    #[test]
    fn endpoints_degenerate_to_vertex_objects() {
        let idx = fixture();
        let (u, v, _) = some_edge(&idx);
        let q = VertexId(3);
        let mut at_u = EdgeObjectDistance::new(&idx, q, EdgeObject::new(u, v, 0.0));
        let du = dijkstra::distance(idx.network(), q, u).unwrap();
        // The object sits exactly on u, but the route via v could tie; the
        // result can never beat the direct distance to u.
        let exact = at_u.refine_until_exact(&idx);
        assert!((exact - du).abs() < 1e-9);
    }

    #[test]
    fn refinement_count_is_bounded_by_both_paths() {
        let idx = fixture();
        let (u, v, _) = some_edge(&idx);
        let o = EdgeObject::new(u, v, 0.5);
        let q = VertexId(149);
        let mut d = EdgeObjectDistance::new(&idx, q, o);
        d.refine_until_exact(&idx);
        let path_u = dijkstra::point_to_point(idx.network(), q, u).unwrap().path.len();
        let path_v = dijkstra::point_to_point(idx.network(), q, v).unwrap().path.len();
        assert!(d.refinements() <= path_u + path_v);
    }

    #[test]
    #[should_panic(expected = "edge fraction")]
    fn fraction_out_of_range_rejected() {
        EdgeObject::new(VertexId(0), VertexId(1), 1.5);
    }

    #[test]
    #[should_panic(expected = "distinct endpoints")]
    fn degenerate_edge_rejected() {
        EdgeObject::new(VertexId(2), VertexId(2), 0.5);
    }
}
