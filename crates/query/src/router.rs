//! Cross-shard kNN over a [`PartitionedSilcIndex`]: the session-layer
//! router.
//!
//! A partitioned index answers *within-shard* distances exactly but knows
//! nothing about paths that cross the cut. The router recovers global
//! soundness from three ingredients:
//!
//! * **Home-shard exactness.** The query's own shard runs the ordinary
//!   incremental algorithm (INN) over the shard-local object set: each
//!   reported object carries its exact induced-subgraph distance, which
//!   upper-bounds the global distance (the shard path exists globally).
//! * **The exit bound.** Any path leaving shard `s` first walks inside
//!   `s` to some exit-frontier vertex `f` and then pays at least `f`'s
//!   cheapest outgoing cut edge, so
//!   `exit(q) = min_f [ d_s(q, f) + min_cut_w(f) ]` lower-bounds every
//!   shard-leaving path. A home object whose local distance is at most
//!   `exit(q)` is therefore globally exact. The router first uses the
//!   cheap Euclidean form (`ratio · ‖q − f‖`), then tightens with
//!   shard-index interval lower bounds (the PR-1 interval machinery) only
//!   when the cheap bound cannot certify exactness.
//! * **The frontier graph.** The router precomputes a small graph over
//!   all cut-edge endpoints: cut edges keep their exact weights, and
//!   frontier vertices of the same shard are linked by their **exact**
//!   intra-shard distances, read from the frontier-distance tier
//!   ([`silc::frontier`]) the partitioned build persists. Any global
//!   path decomposes into within-shard segments between frontier
//!   vertices joined by cut edges, so a per-query Dijkstra seeded with
//!   the exact `d_home(q → f)` values (the tier's reverse rows
//!   evaluated at `q`) settles the **exact global distance** `q → x`
//!   for every frontier vertex `x`. An object `o` in shard `t` then
//!   gets its exact global distance as
//!   `min_x [dist(x) + row_x[o]]` over `t`'s frontier forward rows —
//!   pure in-memory arithmetic once the rows are cached, with the
//!   neighbor shard's own index never probed. Home objects fold
//!   re-entrant paths in the same way, and home objects the INN never
//!   reported (the overflow) are scanned through the rows too.
//!
//! Without a tier (an old directory, or one whose tier failed
//! validation), the intra-shard edges fall back to shard-index interval
//! *upper* bounds and the router reverts to the interval routing of
//! earlier revisions: sound intervals, completeness only when the exit
//! bound certifies it.
//!
//! A neighboring shard is expanded only when its lower bound — the
//! largest of the exit bound, `ratio ·` its Euclidean rectangle
//! distance, and (exact mode) the cheapest settled entry into the
//! shard — still collides with the current kth upper bound `Dk` (ties
//! expand, mirroring the kNN collision rule). Every reported interval
//! is sound; [`PartitionedKnnResult::complete`] is set exactly when the
//! reported distance multiset provably equals the true global kNN
//! multiset. On a fault-free exact-mode run **every** query certifies:
//! `complete` is `true` and all reported intervals are points.
//!
//! ## Graceful degradation
//!
//! Every shard-index probe and every tier-row read the router makes is
//! fallible (both are disk-resident). When a probe fails — an I/O error
//! or a checksum mismatch — the router does **not** panic and does not
//! abandon the query: it marks the shard (or its tier rows) unavailable
//! for the rest of the session, keeps serving from the healthy stores,
//! and substitutes each lost bound with a weaker one that is still
//! sound (the Euclidean lower bound `ratio · ‖·‖` below, `+∞` above;
//! a failed tier row retires exact routing for that shard and the
//! interval path takes over). The answer then reports
//! `complete = false` and lists the offending shards in
//! [`PartitionedKnnResult::degraded`]; every returned interval still
//! contains its object's true global distance. A dead shard that the
//! geometric bounds prune anyway degrades nothing — its objects are
//! provably too far without touching its index. Conversely, a healthy
//! tier *masks* dead neighbor-shard indexes entirely: exact routing
//! never probes them.

use crate::knn::{try_inn_into, KnnScratch};
use crate::objects::{ObjectId, ObjectSet};
use silc::frontier::Direction;
use silc::partitioned::PartitionedSilcIndex;
use silc::{DistInterval, DistanceBrowser, FrontierTier};
use silc_network::VertexId;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// One vertex of the frontier graph.
struct FrontierVertex {
    /// Global vertex id.
    global: VertexId,
    /// Shard the vertex belongs to.
    shard: u32,
    /// Local id within that shard.
    local: u32,
}

/// The precomputed graph over cut-edge endpoints (see the module docs).
struct FrontierGraph {
    verts: Vec<FrontierVertex>,
    /// Frontier indices per shard, sorted by shard-local id — the same
    /// rank order as the frontier-tier rows, so rank `r` of shard `s` is
    /// both `of_shard[s][r]` here and row `r` of the tier.
    of_shard: Vec<Vec<u32>>,
    /// Edges: exact cut edges plus intra-shard edges between frontier
    /// vertices of the same shard — exact tier distances when `exact`,
    /// shard-index interval upper bounds otherwise.
    adj: Vec<Vec<(u32, f64)>>,
    /// `true` when every intra-shard edge is an exact tier distance, so
    /// a Dijkstra seeded with exact distances stays exact throughout.
    exact: bool,
}

impl FrontierGraph {
    /// Tier-row rank of shard-local vertex `local` in shard `s`'s
    /// frontier, if a member.
    fn rank_of(&self, s: usize, local: u32) -> Option<usize> {
        self.of_shard[s].binary_search_by_key(&local, |&i| self.verts[i as usize].local).ok()
    }
}

/// Per-shard slice of the global object set.
struct ShardObjects {
    /// Objects re-addressed to shard-local vertex ids; local object id
    /// `i` is the `i`-th entry of `globals`.
    set: Arc<ObjectSet>,
    /// Local object id → global object id.
    globals: Vec<ObjectId>,
}

struct EngineCore {
    index: Arc<PartitionedSilcIndex>,
    objects: Arc<ObjectSet>,
    /// `min_weight_ratio` of the *global* network: `ratio · ‖a − b‖`
    /// lower-bounds every global distance.
    min_ratio: f64,
    shard_objects: Vec<Option<ShardObjects>>,
    frontier: FrontierGraph,
}

/// A shared, thread-safe pairing of a partitioned index and an object
/// set, with the derived per-shard object sets and the frontier graph.
/// Cheap to clone; spawn one [`PartitionedSession`] per worker thread.
pub struct PartitionedEngine {
    core: Arc<EngineCore>,
}

impl Clone for PartitionedEngine {
    fn clone(&self) -> Self {
        PartitionedEngine { core: Arc::clone(&self.core) }
    }
}

/// Engines must stay shareable across query threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PartitionedEngine>();
};

impl PartitionedEngine {
    /// Derives the per-shard object sets and the frontier graph. The
    /// frontier graph costs one shard-index interval lookup per ordered
    /// pair of same-shard frontier vertices — a one-time scan that makes
    /// every later cross-shard query a cheap Dijkstra over a few hundred
    /// nodes.
    pub fn new(index: Arc<PartitionedSilcIndex>, objects: Arc<ObjectSet>) -> Self {
        let part = index.partition();
        let k = part.shard_count();

        // Per-shard object sets, local object id i ↔ globals[i].
        let mut locals: Vec<(Vec<VertexId>, Vec<ObjectId>)> = vec![Default::default(); k];
        for (oid, v) in objects.iter() {
            let s = part.shard_of(v);
            locals[s].0.push(VertexId(part.local_of(v)));
            locals[s].1.push(oid);
        }
        let shard_objects = locals
            .into_iter()
            .enumerate()
            .map(|(s, (vertices, globals))| {
                (!vertices.is_empty()).then(|| ShardObjects {
                    set: Arc::new(ObjectSet::from_vertices(part.shard(s).network(), vertices, 8)),
                    globals,
                })
            })
            .collect();

        // Frontier vertices: every endpoint of a cut edge.
        let mut ids: Vec<VertexId> = Vec::new();
        for e in part.cut_edges() {
            ids.push(e.source);
            ids.push(e.target);
        }
        ids.sort_unstable_by_key(|v| v.0);
        ids.dedup();
        let fidx: HashMap<u32, u32> =
            ids.iter().enumerate().map(|(i, v)| (v.0, i as u32)).collect();
        let verts: Vec<FrontierVertex> = ids
            .iter()
            .map(|&v| FrontierVertex {
                global: v,
                shard: part.shard_of(v) as u32,
                local: part.local_of(v),
            })
            .collect();
        let mut of_shard: Vec<Vec<u32>> = vec![Vec::new(); k];
        for (i, fv) in verts.iter().enumerate() {
            of_shard[fv.shard as usize].push(i as u32);
        }
        for members in &mut of_shard {
            // Tier rank order: ascending shard-local id.
            members.sort_unstable_by_key(|&i| verts[i as usize].local);
        }
        let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); verts.len()];
        for e in part.cut_edges() {
            adj[fidx[&e.source.0] as usize].push((fidx[&e.target.0], e.weight));
        }
        // Intra-shard edges between same-shard frontier vertices. With a
        // frontier tier, one forward row per frontier vertex yields the
        // *exact* distances to its shard-mates. Without one — or when a
        // row read fails — shard-index interval upper bounds stand in,
        // costing exactness but never soundness.
        let tier = index.frontier_tier().cloned();
        let mut exact = tier.is_some();
        for (s, members) in of_shard.iter().enumerate() {
            let disk = index.shard_index(s);
            for (rank, &a) in members.iter().enumerate() {
                let va_local = verts[a as usize].local;
                debug_assert!(
                    tier.as_ref().is_none_or(|t| t.frontier(s)[rank] == va_local),
                    "frontier-graph rank order must match the tier",
                );
                let row = tier
                    .as_ref()
                    .and_then(|t| t.try_row(s, rank, silc::frontier::Direction::Forward).ok());
                if row.is_none() {
                    exact = false;
                }
                for &b in members {
                    if b == a {
                        continue;
                    }
                    let vb_local = verts[b as usize].local;
                    let hi = match &row {
                        Some(r) => r[vb_local as usize],
                        // A probe that fails (I/O, checksum) just
                        // contributes no edge, which weakens later
                        // Dijkstra bounds but stays sound.
                        None => match disk.try_interval(VertexId(va_local), VertexId(vb_local)) {
                            Ok(iv) => iv.hi,
                            Err(_) => f64::INFINITY,
                        },
                    };
                    if hi.is_finite() {
                        adj[a as usize].push((b, hi));
                    }
                }
            }
        }

        let min_ratio = index.network().min_weight_ratio();
        PartitionedEngine {
            core: Arc::new(EngineCore {
                index,
                objects,
                min_ratio,
                shard_objects,
                frontier: FrontierGraph { verts, of_shard, adj, exact },
            }),
        }
    }

    /// `true` when the frontier graph is built from exact tier distances,
    /// so fault-free routed queries report exact global distances with
    /// `complete == true`.
    pub fn exact_routing(&self) -> bool {
        self.core.frontier.exact
    }

    /// The partitioned index.
    pub fn index(&self) -> &Arc<PartitionedSilcIndex> {
        &self.core.index
    }

    /// The global object set.
    pub fn objects(&self) -> &Arc<ObjectSet> {
        &self.core.objects
    }

    /// Number of frontier-graph vertices (cut-edge endpoints).
    pub fn frontier_len(&self) -> usize {
        self.core.frontier.verts.len()
    }

    /// Opens a per-thread session owning the reusable workspaces.
    pub fn session(&self) -> PartitionedSession {
        let shard_count = self.core.index.partition().shard_count();
        PartitionedSession {
            down: vec![false; shard_count],
            tier_down: vec![false; shard_count],
            core: Arc::clone(&self.core),
            knn: KnnScratch::new(),
            dist: Vec::new(),
            seeds: Vec::new(),
            heap: BinaryHeap::new(),
            cands: Vec::new(),
            his: Vec::new(),
            order: Vec::new(),
            result: PartitionedKnnResult::default(),
        }
    }
}

/// One global kNN answer entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionedNeighbor {
    /// Object id in the *global* object set.
    pub object: ObjectId,
    /// Global vertex the object resides on.
    pub vertex: VertexId,
    /// Sound interval around the global network distance; exact for
    /// candidates certified by the exit bound.
    pub interval: DistInterval,
    /// Shard the object lives in.
    pub shard: u32,
}

/// Counters describing one routed query.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RouterStats {
    /// Shard of the query vertex.
    pub home_shard: u32,
    /// Neighboring shards whose objects were scanned.
    pub shards_expanded: u32,
    /// Whether the frontier-graph Dijkstra ran.
    pub frontier_dijkstra: bool,
    /// Final exit lower bound used (∞ for a single-shard partition).
    pub exit_lb: f64,
    /// Candidates considered across all shards.
    pub candidates: u32,
    /// Cross-shard objects pruned by their lower bound.
    pub pruned: u32,
}

/// Result of a routed kNN: the k best candidates by interval upper
/// bound, plus whether that answer is provably the exact global kNN.
#[derive(Debug, Clone, Default)]
pub struct PartitionedKnnResult {
    /// Neighbors sorted by interval upper bound.
    pub neighbors: Vec<PartitionedNeighbor>,
    /// `true` when the reported distance multiset provably equals the
    /// true global kNN distance multiset: every reported interval is
    /// exact and every bound not expanded is at or beyond the final
    /// `Dk`. When `false` the intervals are still sound (each contains
    /// its object's true global distance), but a cross-cut object with
    /// an overlapping interval might order differently.
    pub complete: bool,
    /// Shards whose index probes failed while answering this query
    /// (sorted, deduplicated). Their contributions were replaced by
    /// weaker-but-sound bounds (see the module docs); non-empty implies
    /// `complete == false`. Empty on a fully healthy run.
    pub degraded: Vec<u32>,
    /// Query counters.
    pub stats: RouterStats,
}

impl PartitionedKnnResult {
    /// Object ids of the result, ascending.
    pub fn object_ids(&self) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = self.neighbors.iter().map(|n| n.object).collect();
        ids.sort_unstable_by_key(|o| o.0);
        ids
    }
}

/// Min-heap item for the frontier Dijkstra.
#[derive(PartialEq)]
struct HeapItem {
    d: f64,
    v: u32,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest first.
        other.d.total_cmp(&self.d).then_with(|| other.v.cmp(&self.v))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// What the home-shard pass produced, carried to the exact-mode row
/// fold ([`PartitionedSession::apply_home_rows`]).
#[derive(Clone, Copy)]
struct HomePass {
    /// Candidates the home pass pushed (a prefix of `cands`).
    served: usize,
    /// Whether the INN ran, i.e. the prefix `hi`s are exact
    /// induced-subgraph distances.
    exact: bool,
    /// Home objects already turned into candidates (the INN's `kk`, or
    /// all of them on the fallback path).
    kk: usize,
    /// The `kk`-th INN distance — the floor on every unseen home object.
    d_kk: f64,
}

/// A candidate during routing; `lo`/`hi` bound the global distance.
#[derive(Clone, Copy)]
struct Cand {
    lo: f64,
    hi: f64,
    object: ObjectId,
    vertex: VertexId,
    shard: u32,
}

/// A per-thread routed-query handle with reusable workspaces. Not
/// `Sync` by design — a session belongs to one worker.
pub struct PartitionedSession {
    core: Arc<EngineCore>,
    knn: KnnScratch,
    dist: Vec<f64>,
    /// Exact `d_home(q → f)` per home frontier rank (tier reverse rows).
    seeds: Vec<f64>,
    heap: BinaryHeap<HeapItem>,
    cands: Vec<Cand>,
    his: Vec<f64>,
    order: Vec<(f64, u32)>,
    result: PartitionedKnnResult,
    /// Shards whose index probes have failed in this session. A down
    /// shard is not probed again (its bounds degrade immediately); see
    /// [`Self::restore_shards`] to retry after recovery.
    down: Vec<bool>,
    /// Shards whose frontier-tier row reads have failed in this session.
    /// Later queries skip the tier for these shards and run the
    /// interval-based fallback path, which certifies itself
    /// independently of the tier.
    tier_down: Vec<bool>,
}

impl PartitionedSession {
    /// The k nearest objects of `q` by global network distance, routed
    /// across shards (see the module docs). The result is borrowed from
    /// the session; clone it to keep it past the next call.
    ///
    /// # Panics
    /// Panics if `k` is zero.
    pub fn knn(&mut self, q: VertexId, k: usize) -> &PartitionedKnnResult {
        assert!(k > 0, "k must be positive");
        let core = Arc::clone(&self.core);
        let part = core.index.partition();
        let network = core.index.network();
        let ratio = core.min_ratio;

        self.result = PartitionedKnnResult::default();
        self.cands.clear();
        let k_eff = k.min(core.objects.len());
        if k_eff == 0 {
            self.result.complete = true;
            return &self.result;
        }

        let s = part.shard_of(q);
        let q_local = VertexId(part.local_of(q));
        let q_pos = network.position(q);
        let home = part.shard(s);
        let home_idx = core.index.shard_index(s);
        self.result.stats.home_shard = s as u32;

        // Cheap exit bound: ratio · ‖q − f‖ + f's cheapest outgoing cut
        // edge, minimized over the home exit frontier. ∞ when the shard
        // has no outgoing cut edges (single shard / isolated component):
        // then every local distance is globally exact.
        let exit_cheap = home
            .exit_frontier()
            .iter()
            .map(|&(f, w)| ratio * q_pos.distance(&network.position(home.to_global(f))) + w)
            .fold(f64::INFINITY, f64::min);
        let mut exit_used = exit_cheap;
        let mut tightened = false;
        // Tracks the home shard's health through the query. The exit
        // bound, the home INN, and the frontier Dijkstra seeds all probe
        // its index; the first failure downgrades every later use to the
        // index-free (geometric) form.
        let mut home_ok = !self.down[s];

        // Exact routing: the engine's frontier graph carries exact
        // intra-shard distances and the tier serves this home shard. One
        // reverse row per home frontier vertex gives the *exact*
        // `d_home(q → f)` seeds, which also yield the tightest exit bound
        // `min_f [d_home(q, f) + min_cut_w(f)]` — so the interval-based
        // `tighten` pass below never needs to run.
        let tier = core.index.frontier_tier().cloned();
        let mut exact_q = core.frontier.exact && tier.is_some() && !self.tier_down[s];
        if exact_q {
            let t = tier.as_ref().expect("exact_q implies a tier");
            match read_seeds(t, s, q_local, &core.frontier, &mut self.seeds) {
                Ok(()) => {
                    let mut exit_exact = f64::INFINITY;
                    for &(f, w) in home.exit_frontier() {
                        let r = core
                            .frontier
                            .rank_of(s, f)
                            .expect("every exit vertex is a cut-edge endpoint");
                        exit_exact = exit_exact.min(self.seeds[r] + w);
                    }
                    exit_used = exit_used.max(exit_exact);
                    tightened = true;
                }
                Err(_) => {
                    // A failed seed read retires the tier for this shard;
                    // the query continues on the interval path, sound but
                    // uncertifiable (the shard is reported degraded).
                    exact_q = false;
                    self.tier_down[s] = true;
                    self.result.degraded.push(s as u32);
                }
            }
        }
        let tighten = |exit_used: &mut f64, tightened: &mut bool, home_ok: &mut bool| {
            if !*tightened {
                // Shard-index interval lower bounds on d_s(q, f) dominate
                // the Euclidean form; one pass over the exit frontier.
                // The exit bound is a minimum over *all* exit vertices, so
                // a single failed probe discards the whole tightening (a
                // partial minimum would be too large — unsound); the cheap
                // Euclidean bound already in `exit_used` stays valid.
                if *home_ok {
                    let mut tight = f64::INFINITY;
                    for &(f, w) in home.exit_frontier() {
                        match home_idx.try_interval(q_local, VertexId(f)) {
                            Ok(iv) => tight = tight.min(iv.lo + w),
                            Err(_) => {
                                *home_ok = false;
                                break;
                            }
                        }
                    }
                    if *home_ok {
                        *exit_used = tight.max(*exit_used);
                    }
                }
                *tightened = true;
            }
        };

        // 1. Home shard: exact local distances via INN. If the home index
        // errors, fall back to every home object with only its Euclidean
        // lower bound — sound, never exact, and the query degrades.
        //
        // The INN sees the *induced-subgraph* distances; a global path
        // that leaves the shard and re-enters can be shorter, and home
        // objects beyond the kk returned are unseen entirely. When the
        // query later crosses the cut in exact mode, `apply_home_rows`
        // folds those re-entrant paths in and scans the overflow, so the
        // numbers recorded here feed that pass.
        let mut home_served_exact = false;
        let mut kk_home = 0usize;
        let mut d_kk = f64::INFINITY;
        if let Some(so) = core.shard_objects[s].as_ref() {
            let mut served_exact = false;
            if home_ok {
                let kk = k_eff.min(so.set.len());
                match try_inn_into(&**home_idx, &so.set, q_local, kk, &mut self.knn) {
                    Ok(()) => served_exact = true,
                    Err(_) => home_ok = false,
                }
            }
            home_served_exact = served_exact;
            if served_exact {
                kk_home = self.knn.result().neighbors.len();
                d_kk = self.knn.result().neighbors.last().map_or(f64::INFINITY, |n| n.interval.hi);
                for nb in &self.knn.result().neighbors {
                    let d = nb.interval.hi; // exact induced-subgraph distance
                    if d > exit_used {
                        tighten(&mut exit_used, &mut tightened, &mut home_ok);
                    }
                    let gobj = so.globals[nb.object.index()];
                    let gv = home.to_global(nb.vertex.0);
                    let (lo, hi) = if d <= exit_used {
                        (d, d) // no shard-leaving path can be shorter
                    } else {
                        let lo = (ratio * q_pos.distance(&network.position(gv))).max(exit_used);
                        (lo.min(d), d)
                    };
                    self.cands.push(Cand { lo, hi, object: gobj, vertex: gv, shard: s as u32 });
                }
            } else {
                // Every home object becomes a candidate, so there is no
                // overflow to scan later.
                kk_home = so.globals.len();
                for (local_oid, &gobj) in so.globals.iter().enumerate() {
                    let lv = so.set.vertex(ObjectId(local_oid as u32));
                    let gv = home.to_global(lv.0);
                    let lo = ratio * q_pos.distance(&network.position(gv));
                    self.cands.push(Cand {
                        lo,
                        hi: f64::INFINITY,
                        object: gobj,
                        vertex: gv,
                        shard: s as u32,
                    });
                }
            }
        }
        let home_pass =
            HomePass { served: self.cands.len(), exact: home_served_exact, kk: kk_home, d_kk };

        // 2. Candidate shards, nearest lower bound first.
        self.order.clear();
        for t in 0..part.shard_count() {
            if t != s && core.shard_objects[t].is_some() {
                let rect = part.shard(t).network().bounds();
                self.order.push((ratio * rect.min_distance(&q_pos), t as u32));
            }
        }
        self.order.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));

        let mut dk = dk_of(&self.cands, k_eff, &mut self.his);
        let order = std::mem::take(&mut self.order);
        let mut dijkstra_ran = false;
        let mut dijkstra_did_run = false;
        let mut home_rows_ok = true;
        let mut expanded = vec![false; part.shard_count()];
        let mut shard_lb = vec![f64::INFINITY; part.shard_count()];
        for &(lb_geo, t) in &order {
            let t = t as usize;
            if self.cands.len() >= k_eff && lb_geo.max(exit_used) > dk {
                shard_lb[t] = lb_geo.max(exit_used);
                continue;
            }
            // About to cross the cut: make the exit bound as strong as
            // the index allows, then re-check. (A no-op in exact mode —
            // the tier seeds already gave the exact exit bound.)
            tighten(&mut exit_used, &mut tightened, &mut home_ok);
            let mut lb_t = lb_geo.max(exit_used);
            if self.cands.len() >= k_eff && lb_t > dk {
                shard_lb[t] = lb_t;
                continue;
            }
            if !dijkstra_ran {
                if exact_q {
                    // Exact seeds, exact intra-shard edges: `dist[x]` is
                    // the exact global distance q → x for every frontier
                    // vertex (any global path decomposes into within-
                    // shard segments between frontier vertices joined by
                    // cut edges). Then fold the re-entrant paths into the
                    // home candidates and scan the home overflow.
                    self.run_frontier_dijkstra_exact(&core, s);
                    let t_ref = tier.as_ref().expect("exact_q implies a tier");
                    home_rows_ok = self.apply_home_rows(&core, t_ref, s, home_pass);
                    if !home_rows_ok {
                        self.tier_down[s] = true;
                        self.result.degraded.push(s as u32);
                    }
                    dk = dk_of(&self.cands, k_eff, &mut self.his);
                } else if home_ok {
                    home_ok = self.run_frontier_dijkstra(&core, q_local, s, home_idx);
                } else {
                    // No usable seeds from a failed home index: every
                    // frontier upper bound is ∞, cross-shard candidates
                    // keep only their geometric lower bounds.
                    self.dist.clear();
                    self.dist.resize(core.frontier.verts.len(), f64::INFINITY);
                }
                dijkstra_did_run = true;
                dijkstra_ran = true;
            }
            let members = &core.frontier.of_shard[t];
            if exact_q {
                // `dist` is exact, so the cheapest entry into `t` is a
                // genuine lower bound for every object in `t` — often far
                // tighter than the geometric/exit forms.
                let lb_entry =
                    members.iter().map(|&fx| self.dist[fx as usize]).fold(f64::INFINITY, f64::min);
                lb_t = lb_t.max(lb_entry);
                if self.cands.len() >= k_eff && lb_t > dk {
                    shard_lb[t] = lb_t;
                    continue;
                }
            }
            expanded[t] = true;
            self.result.stats.shards_expanded += 1;

            let t_shard = part.shard(t);
            let t_idx = core.index.shard_index(t);
            let so = core.shard_objects[t].as_ref().expect("order only lists object shards");

            // Exact last mile: `d(q, o) = min_x [dist[x] + row_x[o]]`
            // over `t`'s frontier — the entry vertex the global shortest
            // path really uses is among the minimized. One forward row
            // per frontier vertex (decoded-cache resident after first
            // touch), then pure in-memory arithmetic per object; the
            // shard's own index is never probed.
            let mut t_rows: Vec<Arc<[f64]>> = Vec::new();
            let mut t_exact = exact_q && !self.tier_down[t];
            if t_exact {
                let t_ref = tier.as_ref().expect("exact_q implies a tier");
                for rank in 0..members.len() {
                    match t_ref.try_row(t, rank, Direction::Forward) {
                        Ok(r) => t_rows.push(r),
                        Err(_) => {
                            t_exact = false;
                            self.tier_down[t] = true;
                            self.result.degraded.push(t as u32);
                            break;
                        }
                    }
                }
            }
            if t_exact {
                for (local_oid, &gobj) in so.globals.iter().enumerate() {
                    let o_local = so.set.vertex(ObjectId(local_oid as u32));
                    let mut d = f64::INFINITY;
                    for (r, &fx) in members.iter().enumerate() {
                        let e = self.dist[fx as usize];
                        if e.is_finite() {
                            d = d.min(e + t_rows[r][o_local.index()]);
                        }
                    }
                    if self.cands.len() >= k_eff && d > dk {
                        self.result.stats.pruned += 1;
                        continue;
                    }
                    let o_global = t_shard.to_global(o_local.0);
                    self.cands.push(Cand {
                        lo: d,
                        hi: d,
                        object: gobj,
                        vertex: o_global,
                        shard: t as u32,
                    });
                    if self.cands.len() >= k_eff && d < dk {
                        dk = dk_of(&self.cands, k_eff, &mut self.his);
                    }
                }
                continue;
            }

            // Interval fallback (no tier, or its rows failed for `t`).
            let mut t_ok = !self.down[t];
            for (local_oid, &gobj) in so.globals.iter().enumerate() {
                let o_local = so.set.vertex(ObjectId(local_oid as u32));
                let o_global = t_shard.to_global(o_local.0);
                let o_pos = network.position(o_global);
                let lo = (ratio * q_pos.distance(&o_pos)).max(lb_t);
                if self.cands.len() >= k_eff && lo > dk {
                    self.result.stats.pruned += 1;
                    continue;
                }
                // Entry choice: the frontier vertex minimizing the bound
                // proxy ub(x) + ‖x − o‖ (floats only); one interval
                // lookup for the chosen entry. A shard whose index has
                // failed is not probed: its candidates keep hi = ∞,
                // still a sound (if uninformative) upper bound.
                let mut best: Option<(f64, u32)> = None;
                for &fx in members {
                    let u = self.dist[fx as usize];
                    if !u.is_finite() {
                        continue;
                    }
                    let f_pos = network.position(core.frontier.verts[fx as usize].global);
                    let proxy = u + o_pos.distance(&f_pos);
                    if best.is_none_or(|(b, _)| proxy < b) {
                        best = Some((proxy, fx));
                    }
                }
                let hi = match best {
                    Some((_, fx)) if t_ok => {
                        let fv = &core.frontier.verts[fx as usize];
                        match t_idx.try_interval(VertexId(fv.local), o_local) {
                            Ok(iv) => self.dist[fx as usize] + iv.hi,
                            Err(_) => {
                                t_ok = false;
                                f64::INFINITY
                            }
                        }
                    }
                    _ => f64::INFINITY,
                };
                let lo = lo.min(hi);
                self.cands.push(Cand { lo, hi, object: gobj, vertex: o_global, shard: t as u32 });
                if self.cands.len() >= k_eff && hi < dk {
                    dk = dk_of(&self.cands, k_eff, &mut self.his);
                }
            }
            if !t_ok {
                self.down[t] = true;
                self.result.degraded.push(t as u32);
            }
        }
        // A fast-path query the exit bound cannot certify — some selected
        // home candidate sits above it — pays for the frontier Dijkstra
        // and the home row fold after all, turning every selected
        // distance exact. Skipped shards stay skipped: their recorded
        // bounds cleared the pre-fold Dk, and folding only shrinks it.
        if exact_q && !dijkstra_ran && dk_of(&self.cands, k_eff, &mut self.his) > exit_used {
            self.run_frontier_dijkstra_exact(&core, s);
            let t_ref = tier.as_ref().expect("exact_q implies a tier");
            home_rows_ok = self.apply_home_rows(&core, t_ref, s, home_pass);
            if !home_rows_ok {
                self.tier_down[s] = true;
                self.result.degraded.push(s as u32);
            }
            dijkstra_did_run = true;
        }

        if !home_ok {
            self.down[s] = true;
            self.result.degraded.push(s as u32);
        }
        self.result.degraded.sort_unstable();
        self.result.degraded.dedup();

        // 3. Select the k best by upper bound and decide completeness.
        self.cands.sort_by(|a, b| {
            a.hi.total_cmp(&b.hi)
                .then_with(|| a.lo.total_cmp(&b.lo))
                .then_with(|| a.object.0.cmp(&b.object.0))
        });
        self.cands.truncate(k_eff);
        debug_assert_eq!(self.cands.len(), k_eff, "every object lives in some shard");
        let dk_final = self.cands.last().map_or(f64::INFINITY, |c| c.hi);
        let all_exact = self.cands.iter().all(|c| c.hi <= c.lo);
        let shards_ok = order.iter().all(|&(lb_geo, t)| {
            expanded[t as usize] || shard_lb[t as usize].max(lb_geo.max(exit_used)) >= dk_final
        });
        let bounds_hold = if dijkstra_did_run && exact_q {
            // Exact path: every selected distance is exact (so
            // `all_exact` holds on a healthy run), re-entrant home paths
            // and the home overflow were folded in by `apply_home_rows`,
            // and each skipped shard's recorded lower bound — entry
            // distance, exit bound, or geometry — clears the final Dk.
            home_rows_ok && shards_ok
        } else {
            exit_used >= dk_final && shards_ok
        };
        self.result.complete = all_exact && bounds_hold && self.result.degraded.is_empty();
        self.result.stats.frontier_dijkstra = dijkstra_did_run;
        self.result.stats.exit_lb = exit_used;
        self.result.stats.candidates =
            (self.cands.len() + self.result.stats.pruned as usize) as u32;
        self.result.neighbors = self
            .cands
            .iter()
            .map(|c| PartitionedNeighbor {
                object: c.object,
                vertex: c.vertex,
                interval: DistInterval::new(c.lo, c.hi),
                shard: c.shard,
            })
            .collect();
        self.order = order;
        &self.result
    }

    /// Dijkstra over the frontier graph, seeded with interval upper
    /// bounds from `q` to the home frontier. `dist[x]` ends up an upper
    /// bound on the global distance `q → x` for every frontier vertex.
    ///
    /// Returns `false` when a seed probe failed. Failed seeds are simply
    /// omitted — a missing seed leaves its frontier vertex at ∞, which is
    /// a sound upper bound — so the distances are usable either way; the
    /// flag only reports the home shard as degraded.
    fn run_frontier_dijkstra(
        &mut self,
        core: &EngineCore,
        q_local: VertexId,
        home: usize,
        home_idx: &silc::DiskSilcIndex,
    ) -> bool {
        let nf = core.frontier.verts.len();
        self.dist.clear();
        self.dist.resize(nf, f64::INFINITY);
        self.heap.clear();
        let mut ok = true;
        for &fx in &core.frontier.of_shard[home] {
            let fv = &core.frontier.verts[fx as usize];
            let d0 = match home_idx.try_interval(q_local, VertexId(fv.local)) {
                Ok(iv) => iv.hi,
                Err(_) => {
                    ok = false;
                    continue;
                }
            };
            if d0.is_finite() && d0 < self.dist[fx as usize] {
                self.dist[fx as usize] = d0;
                self.heap.push(HeapItem { d: d0, v: fx });
            }
        }
        self.relax_frontier(core);
        ok
    }

    /// The exact twin of [`Self::run_frontier_dijkstra`]: seeds are the
    /// tier's exact `d_home(q → f)` values (already in `self.seeds`), and
    /// with exact intra-shard edges the settled `dist[x]` is the exact
    /// global distance `q → x` for every frontier vertex.
    fn run_frontier_dijkstra_exact(&mut self, core: &EngineCore, home: usize) {
        let nf = core.frontier.verts.len();
        self.dist.clear();
        self.dist.resize(nf, f64::INFINITY);
        self.heap.clear();
        for (r, &fx) in core.frontier.of_shard[home].iter().enumerate() {
            let d0 = self.seeds[r];
            if d0.is_finite() && d0 < self.dist[fx as usize] {
                self.dist[fx as usize] = d0;
                self.heap.push(HeapItem { d: d0, v: fx });
            }
        }
        self.relax_frontier(core);
    }

    /// Dijkstra relaxation over the frontier graph from whatever seeds
    /// are already in `dist`/`heap`.
    fn relax_frontier(&mut self, core: &EngineCore) {
        while let Some(HeapItem { d, v }) = self.heap.pop() {
            if d > self.dist[v as usize] {
                continue;
            }
            for &(y, w) in &core.frontier.adj[v as usize] {
                let nd = d + w;
                if nd < self.dist[y as usize] {
                    self.dist[y as usize] = nd;
                    self.heap.push(HeapItem { d: nd, v: y });
                }
            }
        }
    }

    /// After the exact frontier Dijkstra: folds shard-leaving-and-
    /// re-entering paths into the home candidates — the global distance
    /// of a home object `o` is `min(d_home(q, o), min_x [dist[x] +
    /// row_x[o]])` over the home frontier — and scans the home objects
    /// the INN never reported. An unseen object's local distance is at
    /// least `d_kk` (the kk-th INN distance), so whenever its row form
    /// `rf` is at most `d_kk` the global distance is exactly `rf`; when
    /// `rf > d_kk` the object's distance is at least `d_kk`, which at
    /// least ties every selected candidate — skipping it preserves the
    /// reported distance multiset.
    ///
    /// Returns `false` when a home forward-row read failed; the caller
    /// marks the home shard degraded and the remaining candidates keep
    /// their (sound) pre-fold intervals.
    fn apply_home_rows(
        &mut self,
        core: &EngineCore,
        tier: &silc::FrontierTier,
        s: usize,
        home: HomePass,
    ) -> bool {
        let HomePass { served: home_served, exact: served_exact, kk: kk_home, d_kk } = home;
        let part = core.index.partition();
        let members = &core.frontier.of_shard[s];
        let mut rows: Vec<Arc<[f64]>> = Vec::with_capacity(members.len());
        for rank in 0..members.len() {
            match tier.try_row(s, rank, Direction::Forward) {
                Ok(r) => rows.push(r),
                Err(_) => return false,
            }
        }
        let row_form = |dist: &[f64], o_local: usize| {
            let mut rf = f64::INFINITY;
            for (r, &fx) in members.iter().enumerate() {
                let e = dist[fx as usize];
                if e.is_finite() {
                    rf = rf.min(e + rows[r][o_local]);
                }
            }
            rf
        };
        for c in &mut self.cands[..home_served] {
            let o_local = part.local_of(c.vertex) as usize;
            let d = c.hi.min(row_form(&self.dist, o_local));
            if served_exact {
                // `c.hi` was the exact induced-subgraph distance, so the
                // min is the exact global distance.
                c.lo = d;
                c.hi = d;
            } else {
                // The INN failed: `d` is only the row-form upper bound.
                c.lo = c.lo.min(d);
                c.hi = d;
            }
        }
        if let Some(so) = core.shard_objects[s].as_ref() {
            if served_exact && kk_home < so.globals.len() {
                let home = part.shard(s);
                let mut in_inn = vec![false; so.globals.len()];
                for nb in &self.knn.result().neighbors {
                    in_inn[nb.object.index()] = true;
                }
                for (local_oid, &gobj) in so.globals.iter().enumerate() {
                    if in_inn[local_oid] {
                        continue;
                    }
                    let lv = so.set.vertex(ObjectId(local_oid as u32));
                    let rf = row_form(&self.dist, lv.index());
                    if rf <= d_kk {
                        self.cands.push(Cand {
                            lo: rf,
                            hi: rf,
                            object: gobj,
                            vertex: home.to_global(lv.0),
                            shard: s as u32,
                        });
                    }
                }
            }
        }
        true
    }

    /// Shards this session has marked unavailable after failed probes
    /// (ascending). They are skipped — not probed — by later queries,
    /// which report them in [`PartitionedKnnResult::degraded`] whenever
    /// their objects could not be ruled out geometrically.
    pub fn unavailable_shards(&self) -> Vec<u32> {
        (0..self.down.len() as u32)
            .filter(|&s| self.down[s as usize] || self.tier_down[s as usize])
            .collect()
    }

    /// Clears the unavailable markings (index and tier alike), letting
    /// later queries probe every shard again — the recovery hook after an
    /// operator fixes the disk.
    pub fn restore_shards(&mut self) {
        self.down.iter_mut().for_each(|d| *d = false);
        self.tier_down.iter_mut().for_each(|d| *d = false);
    }
}

/// Reads the exact seed distances `d_home(q → f)` for every home
/// frontier vertex from the tier's reverse rows (forward rows when the
/// shard is symmetric — the tier folds that choice into the slot).
/// `seeds[r]` pairs with `fg.of_shard[s][r]`.
fn read_seeds(
    tier: &FrontierTier,
    s: usize,
    q_local: VertexId,
    fg: &FrontierGraph,
    seeds: &mut Vec<f64>,
) -> Result<(), silc::QueryError> {
    seeds.clear();
    for rank in 0..fg.of_shard[s].len() {
        let row = tier.try_row(s, rank, Direction::Reverse)?;
        seeds.push(row[q_local.index()]);
    }
    Ok(())
}

/// The kth smallest upper bound among the candidates (∞ with fewer than
/// `k` candidates) — the pruning radius `Dk`.
fn dk_of(cands: &[Cand], k: usize, his: &mut Vec<f64>) -> f64 {
    if cands.len() < k {
        return f64::INFINITY;
    }
    his.clear();
    his.extend(cands.iter().map(|c| c.hi));
    let (_, kth, _) = his.select_nth_unstable_by(k - 1, f64::total_cmp);
    *kth
}

/// One-shot routed kNN with a fresh session — the convenience wrapper
/// mirroring [`crate::knn()`].
pub fn partitioned_knn(
    index: &Arc<PartitionedSilcIndex>,
    objects: &Arc<ObjectSet>,
    q: VertexId,
    k: usize,
) -> PartitionedKnnResult {
    let engine = PartitionedEngine::new(Arc::clone(index), Arc::clone(objects));
    let mut session = engine.session();
    session.knn(q, k).clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::inn;
    use silc::partitioned::PartitionedBuildConfig;
    use silc_network::generate::{road_network, RoadConfig};
    use silc_network::partition::PartitionConfig;
    use silc_network::{dijkstra, SpatialNetwork};

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("silc-router-tests").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn build(g: &Arc<SpatialNetwork>, shards: usize, name: &str) -> Arc<PartitionedSilcIndex> {
        let cfg = PartitionedBuildConfig {
            partition: PartitionConfig { shards, ..Default::default() },
            grid_exponent: 9,
            threads: 1,
            cache_fraction: 0.5,
        };
        Arc::new(PartitionedSilcIndex::build_in_dir(Arc::clone(g), tmp_dir(name), &cfg).unwrap())
    }

    fn every_third(g: &Arc<SpatialNetwork>) -> Arc<ObjectSet> {
        let vertices: Vec<VertexId> = g.vertices().filter(|v| v.0 % 3 == 0).collect();
        Arc::new(ObjectSet::from_vertices(g, vertices, 8))
    }

    /// k smallest true global distances to the objects, ascending.
    fn brute_topk(g: &SpatialNetwork, objects: &ObjectSet, q: VertexId, k: usize) -> Vec<f64> {
        let mut dists: Vec<f64> =
            objects.iter().map(|(_, v)| dijkstra::distance(g, q, v).expect("connected")).collect();
        dists.sort_by(f64::total_cmp);
        dists.truncate(k);
        dists
    }

    #[test]
    fn intervals_are_sound_and_complete_answers_are_exact() {
        let g =
            Arc::new(road_network(&RoadConfig { vertices: 220, seed: 71, ..Default::default() }));
        let idx = build(&g, 4, "sound");
        let objects = every_third(&g);
        let engine = PartitionedEngine::new(Arc::clone(&idx), Arc::clone(&objects));
        let mut session = engine.session();

        let k = 6;
        let mut complete_count = 0usize;
        let mut expanded_any = false;
        for q in g.vertices().step_by(7) {
            let res = session.knn(q, k).clone();
            assert_eq!(res.neighbors.len(), k);
            // Sorted by upper bound.
            for w in res.neighbors.windows(2) {
                assert!(w[0].interval.hi <= w[1].interval.hi);
            }
            // Every interval contains the true global distance.
            for nb in &res.neighbors {
                let d = dijkstra::distance(&g, q, nb.vertex).expect("connected");
                assert!(
                    nb.interval.lo <= d + 1e-9 && d <= nb.interval.hi + 1e-9,
                    "q={q:?} o={:?}: [{}, {}] must contain {d}",
                    nb.object,
                    nb.interval.lo,
                    nb.interval.hi,
                );
                assert_eq!(objects.vertex(nb.object), nb.vertex);
            }
            expanded_any |= res.stats.shards_expanded > 0;
            if res.complete {
                complete_count += 1;
                let truth = brute_topk(&g, &objects, q, k);
                for (nb, d) in res.neighbors.iter().zip(&truth) {
                    assert!(
                        (nb.interval.hi - d).abs() < 1e-6,
                        "complete answer must match the true kNN multiset",
                    );
                    assert!(nb.interval.hi <= nb.interval.lo + 1e-12, "complete ⇒ exact");
                }
            }
        }
        // Queries near the cut legitimately report intervals instead of
        // exact distances; interior queries must still certify.
        let queries = g.vertices().step_by(7).count();
        assert!(
            complete_count * 4 >= queries,
            "router should certify interior answers exact ({complete_count}/{queries})"
        );
        assert!(expanded_any, "some boundary query must expand a neighbor shard");
    }

    #[test]
    fn exact_routing_certifies_every_fault_free_query() {
        let g =
            Arc::new(road_network(&RoadConfig { vertices: 300, seed: 77, ..Default::default() }));
        let idx = build(&g, 5, "exact-all");
        let objects = every_third(&g);
        let engine = PartitionedEngine::new(Arc::clone(&idx), Arc::clone(&objects));
        assert!(engine.exact_routing(), "a fresh build must route exactly");
        let mut session = engine.session();
        for q in g.vertices().step_by(5) {
            let res = session.knn(q, 7).clone();
            assert!(res.complete, "fault-free exact routing must certify q={q:?}");
            assert!(res.degraded.is_empty());
            let truth = brute_topk(&g, &objects, q, 7);
            for (nb, d) in res.neighbors.iter().zip(&truth) {
                assert!(
                    (nb.interval.hi - d).abs() < 1e-9,
                    "q={q:?}: exact distance {} must equal the true {d}",
                    nb.interval.hi,
                );
                assert!(nb.interval.hi <= nb.interval.lo + 1e-12, "complete ⇒ point intervals");
                let dv = dijkstra::distance(&g, q, nb.vertex).expect("connected");
                assert!((nb.interval.hi - dv).abs() < 1e-9, "per-object distance is exact");
            }
        }
    }

    #[test]
    fn single_shard_partition_matches_inn_exactly() {
        let g =
            Arc::new(road_network(&RoadConfig { vertices: 150, seed: 72, ..Default::default() }));
        let idx = build(&g, 1, "single");
        let objects = every_third(&g);
        let engine = PartitionedEngine::new(Arc::clone(&idx), Arc::clone(&objects));
        assert_eq!(engine.frontier_len(), 0);
        let mut session = engine.session();
        for q in g.vertices().step_by(11) {
            let res = session.knn(q, 5).clone();
            assert!(res.complete, "one shard ⇒ always exact");
            assert!(res.stats.exit_lb.is_infinite());
            assert!(!res.stats.frontier_dijkstra);
            let base = inn(&**idx.shard_index(0), &objects, q, 5);
            let got: Vec<ObjectId> = res.neighbors.iter().map(|n| n.object).collect();
            let want: Vec<ObjectId> = base.neighbors.iter().map(|n| n.object).collect();
            for (nb, base_nb) in res.neighbors.iter().zip(&base.neighbors) {
                assert!((nb.interval.hi - base_nb.interval.hi).abs() < 1e-9);
            }
            assert_eq!(got, want);
        }
    }

    #[test]
    fn one_shot_wrapper_and_edge_cases() {
        let g =
            Arc::new(road_network(&RoadConfig { vertices: 120, seed: 73, ..Default::default() }));
        let idx = build(&g, 3, "oneshot");
        // More neighbors requested than objects exist: clamps to all.
        let few: Vec<VertexId> = g.vertices().take(4).collect();
        let objects = Arc::new(ObjectSet::from_vertices(&g, few, 8));
        let res = partitioned_knn(&idx, &objects, VertexId(60), 50);
        assert_eq!(res.neighbors.len(), 4);
        assert_eq!(res.object_ids(), vec![ObjectId(0), ObjectId(1), ObjectId(2), ObjectId(3)]);
        for nb in &res.neighbors {
            let d = dijkstra::distance(&g, VertexId(60), nb.vertex).expect("connected");
            assert!(nb.interval.lo <= d + 1e-9 && d <= nb.interval.hi + 1e-9);
        }
    }

    /// Opens the partitioned index at `dir` with every shard store wrapped
    /// in a fault injector, returning the index plus the control handles.
    fn open_faulty(
        g: &Arc<SpatialNetwork>,
        dir: &std::path::Path,
        shards: usize,
    ) -> (
        Arc<PartitionedSilcIndex>,
        Vec<Arc<silc_storage::FaultInjectingPageStore<silc_storage::FilePageStore>>>,
    ) {
        let cfg = PartitionedBuildConfig {
            partition: PartitionConfig { shards, ..Default::default() },
            grid_exponent: 9,
            threads: 1,
            cache_fraction: 0.5,
        };
        let mut handles = Vec::new();
        let idx = PartitionedSilcIndex::open_dir_with(Arc::clone(g), dir, &cfg, |_, store| {
            let f = Arc::new(silc_storage::FaultInjectingPageStore::passthrough(store));
            handles.push(Arc::clone(&f));
            Box::new(f)
        })
        .unwrap();
        (Arc::new(idx), handles)
    }

    #[test]
    fn dead_neighbor_shard_degrades_soundly() {
        let g =
            Arc::new(road_network(&RoadConfig { vertices: 220, seed: 71, ..Default::default() }));
        // Build once on disk, then reopen through fault injectors.
        build(&g, 4, "degrade-neighbor");
        let dir = std::env::temp_dir().join("silc-router-tests").join("degrade-neighbor");
        let (idx, handles) = open_faulty(&g, &dir, 4);
        let objects = every_third(&g);
        let engine = PartitionedEngine::new(Arc::clone(&idx), Arc::clone(&objects));

        // Find a query that expands at least one neighbor shard when
        // everything is healthy.
        let mut probe = engine.session();
        let q = g
            .vertices()
            .find(|&q| probe.knn(q, 6).stats.shards_expanded > 0)
            .expect("some query must cross the cut");
        let home = idx.partition().shard_of(q);

        // With a healthy tier, neighbor queries never touch the neighbor
        // indexes, so killing them changes nothing — queries stay exact.
        let n_shards = idx.shard_count();
        for (s, h) in handles.iter().enumerate() {
            if s != home && s < n_shards {
                h.kill();
                idx.shard_index(s).clear_cache();
            }
        }
        let mut tiered = engine.session();
        let masked = tiered.knn(q, 6).clone();
        assert!(masked.complete, "the tier masks dead neighbor indexes");
        assert!(masked.degraded.is_empty());

        // Kill the tier too (it is the last wrapped store) and drop its
        // warm rows: now the router must fall back to the dead indexes.
        handles[n_shards].kill();
        idx.frontier_tier().expect("built with a tier").clear_cache();

        let mut session = engine.session();
        let res = session.knn(q, 6).clone();
        assert!(!res.complete, "dead tier + dead shards can never certify");
        assert!(!res.degraded.is_empty(), "the failures must be reported");
        assert_eq!(res.neighbors.len(), 6);
        for nb in &res.neighbors {
            let d = dijkstra::distance(&g, q, nb.vertex).expect("connected");
            assert!(
                nb.interval.lo <= d + 1e-9 && d <= nb.interval.hi + 1e-9,
                "degraded interval [{}, {}] must still contain {d}",
                nb.interval.lo,
                nb.interval.hi,
            );
        }
        // The session remembers: the dead stores are skipped (not
        // re-probed) and the next affected query still cannot certify.
        assert!(!session.unavailable_shards().is_empty());
        let again = session.knn(q, 6).clone();
        assert!(!again.degraded.is_empty());
        assert!(!again.complete);
    }

    #[test]
    fn dead_home_shard_still_answers_with_sound_intervals() {
        let g =
            Arc::new(road_network(&RoadConfig { vertices: 220, seed: 75, ..Default::default() }));
        build(&g, 3, "degrade-home");
        let dir = std::env::temp_dir().join("silc-router-tests").join("degrade-home");
        let (idx, handles) = open_faulty(&g, &dir, 3);
        let objects = every_third(&g);
        let engine = PartitionedEngine::new(Arc::clone(&idx), Arc::clone(&objects));

        let q = VertexId(0);
        let home = idx.partition().shard_of(q);
        handles[home].kill();
        idx.shard_index(home).clear_cache();

        let mut session = engine.session();
        let res = session.knn(q, 5).clone();
        assert!(!res.complete);
        assert!(res.degraded.contains(&(home as u32)), "home failure must be reported");
        assert_eq!(res.neighbors.len(), 5);
        for nb in &res.neighbors {
            let d = dijkstra::distance(&g, q, nb.vertex).expect("connected");
            assert!(
                nb.interval.lo <= d + 1e-9 && d <= nb.interval.hi + 1e-9,
                "home-degraded interval [{}, {}] must still contain {d}",
                nb.interval.lo,
                nb.interval.hi,
            );
        }
        // restore_shards lets the session probe again (the store is still
        // dead here, so the next query degrades again rather than panics).
        session.restore_shards();
        assert!(session.unavailable_shards().is_empty());
        let after = session.knn(q, 5).clone();
        assert!(after.degraded.contains(&(home as u32)));
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let g =
            Arc::new(road_network(&RoadConfig { vertices: 80, seed: 74, ..Default::default() }));
        let idx = build(&g, 2, "zerok");
        let objects = every_third(&g);
        partitioned_knn(&idx, &objects, VertexId(0), 0);
    }
}
