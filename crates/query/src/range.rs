//! Network-distance range queries.
//!
//! The paper's contribution slide (p.40) stresses that SILC is "a general
//! framework for query processing in spatial networks — not restricted to
//! nearest neighbor queries". This module demonstrates that: a *range
//! query* returns every object within network distance `radius` of the
//! query, using the same block pruning and progressive refinement as kNN —
//! blocks whose regional lower bound exceeds the radius are never opened,
//! and objects are refined only until their interval falls entirely inside
//! or outside the radius.

use crate::objects::{ObjectId, ObjectSet};
use crate::result::{Neighbor, QueryStats};
use silc::refine::RefinableDistance;
use silc::DistanceBrowser;
use silc_network::VertexId;
use silc_quadtree::NodeView;

/// Result of a range query.
#[derive(Debug, Clone)]
pub struct RangeResult {
    /// Objects with network distance ≤ `radius`, in no particular order.
    pub neighbors: Vec<Neighbor>,
    /// Execution counters (refinements, queue pushes).
    pub stats: QueryStats,
}

/// All objects within network distance `radius` of `query`.
///
/// # Panics
/// Panics if `radius` is negative or NaN.
pub fn within_distance<B: DistanceBrowser + ?Sized>(
    browser: &B,
    objects: &ObjectSet,
    query: VertexId,
    radius: f64,
) -> RangeResult {
    assert!(radius >= 0.0, "radius must be non-negative");
    let mut stats = QueryStats::default();
    let mut neighbors = Vec::new();
    if objects.is_empty() {
        return RangeResult { neighbors, stats };
    }
    let tree = objects.quadtree();
    if browser.region_lower_bound(query, &tree.rect(tree.root())) > radius {
        return RangeResult { neighbors, stats };
    }
    let mut stack = vec![tree.root()];
    while let Some(node) = stack.pop() {
        stats.queue_pushes += 1;
        stats.max_queue = stats.max_queue.max(stack.len() + 1);
        match tree.node(node) {
            NodeView::Internal(children) => {
                // Prune subtrees whose regional lower bound already exceeds
                // the radius — they cannot contain an in-range object.
                stack.extend(
                    children
                        .into_iter()
                        .filter(|&c| browser.region_lower_bound(query, &tree.rect(c)) <= radius),
                );
            }
            NodeView::Leaf(items) => {
                for &item in items {
                    let o = ObjectId(*tree.payload(item));
                    let vertex = objects.vertex(o);
                    let mut r = RefinableDistance::new(browser, query, vertex);
                    // Refine only until the interval decides the predicate.
                    loop {
                        let iv = r.interval();
                        if iv.hi <= radius {
                            neighbors.push(Neighbor { object: o, vertex, interval: iv });
                            break;
                        }
                        if iv.lo > radius {
                            break;
                        }
                        if !r.refine(browser) {
                            // Exact and equal to radius boundary.
                            if r.interval().lo <= radius {
                                neighbors.push(Neighbor {
                                    object: o,
                                    vertex,
                                    interval: r.interval(),
                                });
                            }
                            break;
                        }
                        stats.refinements += 1;
                    }
                }
            }
        }
    }
    RangeResult { neighbors, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silc::{BuildConfig, SilcIndex};
    use silc_network::dijkstra;
    use silc_network::generate::{road_network, RoadConfig};
    use std::sync::Arc;

    fn fixture() -> (SilcIndex, ObjectSet) {
        let g =
            Arc::new(road_network(&RoadConfig { vertices: 180, seed: 66, ..Default::default() }));
        let idx =
            SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 9, threads: 0 }).unwrap();
        let objects = ObjectSet::random(&g, 0.2, 4);
        (idx, objects)
    }

    #[test]
    fn range_matches_brute_force() {
        let (idx, objects) = fixture();
        let g = idx.network();
        for &q in &[0u32, 90, 179] {
            let q = VertexId(q);
            let tree = dijkstra::full_sssp(g, q);
            // Pick a radius that includes roughly half the objects.
            let mut dists: Vec<f64> = objects.iter().map(|(_, v)| tree.dist[v.index()]).collect();
            dists.sort_by(f64::total_cmp);
            let radius = dists[dists.len() / 2];

            let r = within_distance(&idx, &objects, q, radius);
            let mut got: Vec<u32> = r.neighbors.iter().map(|n| n.object.0).collect();
            got.sort_unstable();
            let mut want: Vec<u32> = objects
                .iter()
                .filter(|&(_, v)| tree.dist[v.index()] <= radius)
                .map(|(o, _)| o.0)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "range query wrong at q={q}, radius={radius}");
        }
    }

    #[test]
    fn zero_radius_returns_colocated_objects_only() {
        let (idx, _) = fixture();
        let objects = ObjectSet::from_vertices(idx.network(), vec![VertexId(5), VertexId(42)], 4);
        let r = within_distance(&idx, &objects, VertexId(5), 0.0);
        assert_eq!(r.neighbors.len(), 1);
        assert_eq!(r.neighbors[0].object, ObjectId(0));
    }

    #[test]
    fn huge_radius_returns_everything() {
        let (idx, objects) = fixture();
        let r = within_distance(&idx, &objects, VertexId(7), f64::INFINITY);
        assert_eq!(r.neighbors.len(), objects.len());
    }

    #[test]
    fn empty_object_set() {
        let (idx, _) = fixture();
        let objects = ObjectSet::from_vertices(idx.network(), vec![], 4);
        let r = within_distance(&idx, &objects, VertexId(0), 100.0);
        assert!(r.neighbors.is_empty());
    }

    #[test]
    fn pruning_skips_out_of_range_blocks() {
        // `queue_pushes` counts visited quadtree nodes: a tight radius must
        // cut off whole subtrees via the regional lower bound. (Refinement
        // counts are not monotone in the radius — an infinite radius
        // accepts every object with zero refinements.)
        let (idx, objects) = fixture();
        let tight = within_distance(&idx, &objects, VertexId(0), 50.0);
        let loose = within_distance(&idx, &objects, VertexId(0), 1e9);
        assert!(
            tight.stats.queue_pushes < loose.stats.queue_pushes,
            "a tight radius should visit fewer blocks ({} vs {})",
            tight.stats.queue_pushes,
            loose.stats.queue_pushes
        );
        assert!(tight.neighbors.len() < loose.neighbors.len());
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn negative_radius_rejected() {
        let (idx, objects) = fixture();
        let _ = within_distance(&idx, &objects, VertexId(0), -1.0);
    }
}
