//! Ground truth for tests: brute-force k-nearest-neighbors by full Dijkstra.

use crate::objects::{ObjectId, ObjectSet};
use silc_network::{dijkstra, SpatialNetwork, VertexId};

/// The `k` objects nearest to `query` by network distance, computed with one
/// full single-source Dijkstra — `O(m log n)`, no index, no cleverness.
/// Returns `(object, distance)` sorted ascending (ties by object id).
pub fn brute_force_knn(
    network: &SpatialNetwork,
    objects: &ObjectSet,
    query: VertexId,
    k: usize,
) -> Vec<(ObjectId, f64)> {
    let tree = dijkstra::full_sssp(network, query);
    let mut all: Vec<(ObjectId, f64)> =
        objects.iter().map(|(o, v)| (o, tree.dist[v.index()])).collect();
    all.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use silc_network::generate::{grid_network, GridConfig};

    #[test]
    fn brute_force_is_sorted_and_truncated() {
        let g = grid_network(&GridConfig { rows: 6, cols: 6, seed: 1, ..Default::default() });
        let objects = ObjectSet::random(&g, 0.5, 2);
        let r = brute_force_knn(&g, &objects, VertexId(0), 5);
        assert_eq!(r.len(), 5);
        for w in r.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn asking_for_more_than_available() {
        let g = grid_network(&GridConfig { rows: 4, cols: 4, seed: 1, ..Default::default() });
        let objects = ObjectSet::from_vertices(&g, vec![VertexId(1), VertexId(2)], 4);
        let r = brute_force_knn(&g, &objects, VertexId(0), 10);
        assert_eq!(r.len(), 2);
    }
}
