//! Disk-resident variants of the INE and IER baselines.
//!
//! The paper's experiments are disk-resident end to end: the competitors
//! read the *network* from disk just as SILC reads its quadtrees from disk.
//! These variants run the same [`crate::baselines`] cores (`ine_core`,
//! `ier_core`, `p2p_core` — one copy of each Dijkstra loop) but serve
//! every adjacency list through `silc_network::paged::PagedNetwork`'s
//! buffer pool, so their I/O cost is real and comparable with the
//! disk-resident SILC index. They share [`BaselineScratch`] with the
//! in-memory variants, so a [`crate::QuerySession`] reuses one set of
//! Dijkstra arrays for all four.

use crate::baselines::{ier_core, ine_core, p2p_core, BaselineScratch};
use crate::objects::ObjectSet;
use crate::result::KnnResult;
use silc_network::paged::PagedNetwork;
use silc_network::VertexId;

/// INE over a disk-resident network: Dijkstra expansion whose every
/// adjacency-list access goes through the buffer pool. Workspace-reusing
/// core behind [`ine_disk`] and [`crate::QuerySession::ine_disk`].
pub(crate) fn ine_disk_into(
    network: &PagedNetwork,
    objects: &ObjectSet,
    query: VertexId,
    k: usize,
    scratch: &mut BaselineScratch,
) {
    ine_core(objects, query, k, network.vertex_count(), scratch, |u, buf| {
        network.out_edges(u, buf) // the disk access
    });
}

/// One-shot wrapper around `ine_disk_into` with a fresh scratch.
pub fn ine_disk(
    network: &PagedNetwork,
    objects: &ObjectSet,
    query: VertexId,
    k: usize,
) -> KnnResult {
    let mut scratch = BaselineScratch::new();
    ine_disk_into(network, objects, query, k, &mut scratch);
    scratch.into_result()
}

/// IER over a disk-resident network: Euclidean filtering from the in-memory
/// object quadtree, one paged Dijkstra per candidate. Workspace-reusing
/// core behind [`ier_disk`] and [`crate::QuerySession::ier_disk`].
///
/// `min_ratio` is the network's minimum weight/Euclidean-length ratio (the
/// admissible scaling for the Euclidean cutoff); compute it once with
/// `SpatialNetwork::min_weight_ratio` before paging the network out.
/// Unreachable candidates score `f64::INFINITY` (no panic — the paged file
/// carries no connectivity guarantee).
pub(crate) fn ier_disk_into(
    network: &PagedNetwork,
    objects: &ObjectSet,
    query: VertexId,
    k: usize,
    min_ratio: f64,
    scratch: &mut BaselineScratch,
) {
    let n = network.vertex_count();
    ier_core(
        objects,
        network.position(query),
        k,
        min_ratio,
        scratch,
        |scratch, target, visited| {
            p2p_core(n, query, target, scratch, visited, |u, buf| network.out_edges(u, buf))
        },
    );
}

/// One-shot wrapper around `ier_disk_into` with a fresh scratch.
pub fn ier_disk(
    network: &PagedNetwork,
    objects: &ObjectSet,
    query: VertexId,
    k: usize,
    min_ratio: f64,
) -> KnnResult {
    let mut scratch = BaselineScratch::new();
    ier_disk_into(network, objects, query, k, min_ratio, &mut scratch);
    scratch.into_result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{ier, ine};
    use silc_network::generate::{road_network, RoadConfig};
    use silc_network::paged::write_paged;

    fn fixture(name: &str) -> (silc_network::SpatialNetwork, PagedNetwork, ObjectSet) {
        let g = road_network(&RoadConfig { vertices: 160, seed: 14, ..Default::default() });
        let dir = std::env::temp_dir().join("silc-disk-baseline-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        write_paged(&g, &path).unwrap();
        let paged = PagedNetwork::open(&path, 0.25).unwrap();
        let objects = ObjectSet::random(&g, 0.1, 6);
        (g, paged, objects)
    }

    #[test]
    fn ine_disk_matches_memory_ine() {
        let (g, paged, objects) = fixture("ine.pnet");
        for &q in &[0u32, 80, 159] {
            let a = ine(&g, &objects, VertexId(q), 5);
            let b = ine_disk(&paged, &objects, VertexId(q), 5);
            assert_eq!(a.object_ids(), b.object_ids(), "q={q}");
        }
        assert!(paged.io_stats().requests() > 0, "disk INE must touch pages");
    }

    #[test]
    fn ier_disk_matches_memory_ier() {
        let (g, paged, objects) = fixture("ier.pnet");
        let ratio = g.min_weight_ratio();
        for &q in &[17u32, 120] {
            let a = ier(&g, &objects, VertexId(q), 5);
            let b = ier_disk(&paged, &objects, VertexId(q), 5, ratio);
            assert_eq!(a.object_ids(), b.object_ids(), "q={q}");
        }
    }

    #[test]
    fn visit_counters_populate() {
        let (_, paged, objects) = fixture("count.pnet");
        let r = ine_disk(&paged, &objects, VertexId(0), 3);
        assert!(r.stats.dijkstra_visited > 0);
        assert!(r.stats.index_queries > 0);
    }
}
