//! Disk-resident variants of the INE and IER baselines.
//!
//! The paper's experiments are disk-resident end to end: the competitors
//! read the *network* from disk just as SILC reads its quadtrees from disk.
//! These variants run the same algorithms as [`crate::baselines`] but fetch
//! every adjacency list through `silc_network::paged::PagedNetwork`'s
//! buffer pool, so their I/O cost is real and comparable with the
//! disk-resident SILC index.

use crate::objects::{ObjectId, ObjectSet};
use crate::result::{KnnResult, Neighbor, QueryStats};
use silc::DistInterval;
use silc_network::paged::PagedNetwork;
use silc_network::VertexId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    dist: f64,
    vertex: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other.dist.total_cmp(&self.dist).then_with(|| other.vertex.cmp(&self.vertex))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Best {
    dist: f64,
    object: ObjectId,
}

impl Eq for Best {}

impl Ord for Best {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist.total_cmp(&other.dist).then_with(|| self.object.cmp(&other.object))
    }
}

impl PartialOrd for Best {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn finalize(best: BinaryHeap<Best>, objects: &ObjectSet, stats: QueryStats) -> KnnResult {
    let mut sorted: Vec<Best> = best.into_vec();
    sorted.sort();
    KnnResult {
        neighbors: sorted
            .into_iter()
            .map(|b| Neighbor {
                object: b.object,
                vertex: objects.vertex(b.object),
                interval: DistInterval::exact(b.dist),
            })
            .collect(),
        stats,
    }
}

/// INE over a disk-resident network: Dijkstra expansion whose every
/// adjacency-list access goes through the buffer pool.
pub fn ine_disk(
    network: &PagedNetwork,
    objects: &ObjectSet,
    query: VertexId,
    k: usize,
) -> KnnResult {
    assert!(k > 0, "k must be positive");
    let n = network.vertex_count();
    let mut stats = QueryStats::default();
    let mut best: BinaryHeap<Best> = BinaryHeap::with_capacity(k + 1);
    let mut dist = vec![f64::INFINITY; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    let mut adjacency = Vec::new();
    dist[query.index()] = 0.0;
    heap.push(HeapEntry { dist: 0.0, vertex: query.0 });
    while let Some(HeapEntry { dist: d, vertex: u }) = heap.pop() {
        if settled[u as usize] {
            continue;
        }
        settled[u as usize] = true;
        stats.dijkstra_visited += 1;
        if best.len() == k && d > best.peek().expect("k > 0").dist {
            break;
        }
        stats.index_queries += 1;
        for &o in objects.objects_at(VertexId(u)) {
            if best.len() < k {
                best.push(Best { dist: d, object: o });
            } else if d < best.peek().expect("k > 0").dist {
                best.push(Best { dist: d, object: o });
                best.pop();
            }
        }
        network.out_edges(VertexId(u), &mut adjacency); // the disk access
        for &(v, w) in &adjacency {
            let vi = v.index();
            if settled[vi] {
                continue;
            }
            let nd = d + w;
            if nd < dist[vi] {
                dist[vi] = nd;
                heap.push(HeapEntry { dist: nd, vertex: v.0 });
            }
        }
    }
    stats.dk_final = best.iter().map(|b| b.dist).fold(0.0, f64::max);
    finalize(best, objects, stats)
}

/// Point-to-point Dijkstra over the paged network with early termination.
fn paged_p2p(network: &PagedNetwork, s: VertexId, t: VertexId, visited: &mut usize) -> f64 {
    let n = network.vertex_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    let mut adjacency = Vec::new();
    dist[s.index()] = 0.0;
    heap.push(HeapEntry { dist: 0.0, vertex: s.0 });
    while let Some(HeapEntry { dist: d, vertex: u }) = heap.pop() {
        if settled[u as usize] {
            continue;
        }
        settled[u as usize] = true;
        *visited += 1;
        if u == t.0 {
            return d;
        }
        network.out_edges(VertexId(u), &mut adjacency);
        for &(v, w) in &adjacency {
            let vi = v.index();
            if settled[vi] {
                continue;
            }
            let nd = d + w;
            if nd < dist[vi] {
                dist[vi] = nd;
                heap.push(HeapEntry { dist: nd, vertex: v.0 });
            }
        }
    }
    f64::INFINITY
}

/// IER over a disk-resident network: Euclidean filtering from the in-memory
/// object quadtree, one paged Dijkstra per candidate.
///
/// `min_ratio` is the network's minimum weight/Euclidean-length ratio (the
/// admissible scaling for the Euclidean cutoff); compute it once with
/// `SpatialNetwork::min_weight_ratio` before paging the network out.
pub fn ier_disk(
    network: &PagedNetwork,
    objects: &ObjectSet,
    query: VertexId,
    k: usize,
    min_ratio: f64,
) -> KnnResult {
    assert!(k > 0, "k must be positive");
    let mut stats = QueryStats::default();
    let qpos = network.position(query);
    let mut best: BinaryHeap<Best> = BinaryHeap::with_capacity(k + 1);
    for (item, euclid) in objects.quadtree().nearest_iter(qpos) {
        if best.len() == k && euclid * min_ratio > best.peek().expect("k > 0").dist {
            break;
        }
        stats.index_queries += 1;
        let o = ObjectId(*objects.quadtree().payload(item));
        let d = paged_p2p(network, query, objects.vertex(o), &mut stats.dijkstra_visited);
        if best.len() < k {
            best.push(Best { dist: d, object: o });
        } else if d < best.peek().expect("k > 0").dist {
            best.push(Best { dist: d, object: o });
            best.pop();
        }
    }
    stats.dk_final = best.iter().map(|b| b.dist).fold(0.0, f64::max);
    finalize(best, objects, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{ier, ine};
    use silc_network::generate::{road_network, RoadConfig};
    use silc_network::paged::write_paged;

    fn fixture(name: &str) -> (silc_network::SpatialNetwork, PagedNetwork, ObjectSet) {
        let g = road_network(&RoadConfig { vertices: 160, seed: 14, ..Default::default() });
        let dir = std::env::temp_dir().join("silc-disk-baseline-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        write_paged(&g, &path).unwrap();
        let paged = PagedNetwork::open(&path, 0.25).unwrap();
        let objects = ObjectSet::random(&g, 0.1, 6);
        (g, paged, objects)
    }

    #[test]
    fn ine_disk_matches_memory_ine() {
        let (g, paged, objects) = fixture("ine.pnet");
        for &q in &[0u32, 80, 159] {
            let a = ine(&g, &objects, VertexId(q), 5);
            let b = ine_disk(&paged, &objects, VertexId(q), 5);
            assert_eq!(a.object_ids(), b.object_ids(), "q={q}");
        }
        assert!(paged.io_stats().requests() > 0, "disk INE must touch pages");
    }

    #[test]
    fn ier_disk_matches_memory_ier() {
        let (g, paged, objects) = fixture("ier.pnet");
        let ratio = g.min_weight_ratio();
        for &q in &[17u32, 120] {
            let a = ier(&g, &objects, VertexId(q), 5);
            let b = ier_disk(&paged, &objects, VertexId(q), 5, ratio);
            assert_eq!(a.object_ids(), b.object_ids(), "q={q}");
        }
    }

    #[test]
    fn visit_counters_populate() {
        let (_, paged, objects) = fixture("count.pnet");
        let r = ine_disk(&paged, &objects, VertexId(0), 3);
        assert!(r.stats.dijkstra_visited > 0);
        assert!(r.stats.index_queries > 0);
    }
}
