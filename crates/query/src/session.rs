//! The concurrent query-serving layer: [`QueryEngine`] and [`QuerySession`].
//!
//! The paper's query algorithms are cheap per call precisely so a server
//! can answer many of them (§6: disk-resident queries are I/O-bound through
//! a shared page cache). This module is the serving architecture around
//! them:
//!
//! * a [`QueryEngine`] pairs a shared, immutable index (anything
//!   implementing `DistanceBrowser` — in-memory or disk-resident) with a
//!   shared object set. It is `Send + Sync` and cheap to clone (two `Arc`
//!   bumps), so one engine serves any number of threads;
//! * a [`QuerySession`] is the per-thread handle: it owns the reusable
//!   workspaces (priority queue, object-state map, candidate list, Dijkstra
//!   arrays, result buffers) that every algorithm runs through, so in steady
//!   state a query performs **zero hot-path heap allocations** — the second
//!   identical query through a session allocates nothing at all (locked by
//!   the `session_alloc` integration test).
//!
//! Results come back as `&KnnResult` borrowed from the session (the buffers
//! are reused by the next call); clone if you need to keep one. Every
//! session method is bit-identical to the corresponding free function —
//! both run the same `*_into` core.

use crate::approx::{approx_knn_into, try_approx_knn_into, ApproxDistanceOracle, ApproxScratch};
use crate::baselines::{ier_into, ine_into, BaselineScratch};
use crate::baselines_disk::{ier_disk_into, ine_disk_into};
use crate::knn::{inn_into, knn_into, try_inn_into, try_knn_into, KnnScratch, KnnVariant};
use crate::objects::ObjectSet;
use crate::result::KnnResult;
use silc::{DistanceBrowser, QueryError};
use silc_network::paged::PagedNetwork;
use silc_network::VertexId;
use std::sync::Arc;

/// A shared, thread-safe pairing of an index and an object set.
///
/// The engine holds no mutable state: it exists so that "the thing a server
/// shares between worker threads" is one value with one type, and so that
/// spawning a worker is `engine.session()` instead of threading two `Arc`s
/// and four workspace buffers by hand.
pub struct QueryEngine<B: DistanceBrowser + ?Sized> {
    browser: Arc<B>,
    objects: Arc<ObjectSet>,
}

/// Engines must stay shareable across query threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryEngine<silc::SilcIndex>>();
    assert_send_sync::<QueryEngine<silc::DiskSilcIndex>>();
};

impl<B: DistanceBrowser + ?Sized> Clone for QueryEngine<B> {
    fn clone(&self) -> Self {
        QueryEngine { browser: Arc::clone(&self.browser), objects: Arc::clone(&self.objects) }
    }
}

impl<B: DistanceBrowser + ?Sized> QueryEngine<B> {
    /// Pairs a shared index with a shared object set.
    pub fn new(browser: Arc<B>, objects: Arc<ObjectSet>) -> Self {
        QueryEngine { browser, objects }
    }

    /// The shared index.
    pub fn browser(&self) -> &Arc<B> {
        &self.browser
    }

    /// The shared object set.
    pub fn objects(&self) -> &Arc<ObjectSet> {
        &self.objects
    }

    /// Opens a session: the per-thread handle owning the reusable query
    /// workspaces. Cheap (empty buffers grow on first use); create one per
    /// worker thread and keep it for the thread's lifetime.
    pub fn session(&self) -> QuerySession<B> {
        QuerySession {
            browser: Arc::clone(&self.browser),
            objects: Arc::clone(&self.objects),
            knn: KnnScratch::new(),
            baseline: BaselineScratch::new(),
            approx: ApproxScratch::new(),
        }
    }
}

/// A per-thread query handle with reusable workspaces.
///
/// Not `Sync` by design — a session belongs to one worker. All algorithms
/// of the crate run through it; each returns a result borrowed from the
/// session's buffers.
pub struct QuerySession<B: DistanceBrowser + ?Sized> {
    browser: Arc<B>,
    objects: Arc<ObjectSet>,
    knn: KnnScratch,
    baseline: BaselineScratch,
    approx: ApproxScratch,
}

impl<B: DistanceBrowser + ?Sized> QuerySession<B> {
    /// The shared index.
    pub fn browser(&self) -> &B {
        &self.browser
    }

    /// The shared object set.
    pub fn objects(&self) -> &ObjectSet {
        &self.objects
    }

    /// The non-incremental kNN algorithm ([`crate::knn()`]) and its kNN-I /
    /// kNN-M variants, through the session workspaces.
    pub fn knn(&mut self, query: VertexId, k: usize, variant: KnnVariant) -> &KnnResult {
        knn_into(&*self.browser, &self.objects, query, k, variant, &mut self.knn);
        self.knn.result()
    }

    /// Fallible flavor of [`Self::knn`] for disk-resident indexes: page
    /// I/O failures and checksum mismatches come back as a typed
    /// [`QueryError`] instead of a panic. On `Ok` the answer is
    /// bit-identical to [`Self::knn`]'s (both run the same core); on `Err`
    /// the session stays usable but holds no meaningful result.
    pub fn try_knn(
        &mut self,
        query: VertexId,
        k: usize,
        variant: KnnVariant,
    ) -> Result<&KnnResult, QueryError> {
        try_knn_into(&*self.browser, &self.objects, query, k, variant, &mut self.knn)?;
        Ok(self.knn.result())
    }

    /// The incremental algorithm INN ([`crate::inn`]), through the session
    /// workspaces.
    pub fn inn(&mut self, query: VertexId, k: usize) -> &KnnResult {
        inn_into(&*self.browser, &self.objects, query, k, &mut self.knn);
        self.knn.result()
    }

    /// Fallible flavor of [`Self::inn`]; see [`Self::try_knn`] for the
    /// error contract.
    pub fn try_inn(&mut self, query: VertexId, k: usize) -> Result<&KnnResult, QueryError> {
        try_inn_into(&*self.browser, &self.objects, query, k, &mut self.knn)?;
        Ok(self.knn.result())
    }

    /// The INE competitor ([`crate::ine`]) over the engine's in-memory
    /// network, through the session workspaces.
    pub fn ine(&mut self, query: VertexId, k: usize) -> &KnnResult {
        ine_into(self.browser.network(), &self.objects, query, k, &mut self.baseline);
        self.baseline.result()
    }

    /// The IER competitor ([`crate::ier`]) over the engine's in-memory
    /// network, through the session workspaces.
    pub fn ier(&mut self, query: VertexId, k: usize) -> &KnnResult {
        ier_into(self.browser.network(), &self.objects, query, k, &mut self.baseline);
        self.baseline.result()
    }

    /// Disk-resident INE ([`crate::ine_disk`]) against a paged network,
    /// through the session workspaces.
    pub fn ine_disk(&mut self, paged: &PagedNetwork, query: VertexId, k: usize) -> &KnnResult {
        ine_disk_into(paged, &self.objects, query, k, &mut self.baseline);
        self.baseline.result()
    }

    /// Disk-resident IER ([`crate::ier_disk`]) against a paged network,
    /// through the session workspaces.
    pub fn ier_disk(
        &mut self,
        paged: &PagedNetwork,
        query: VertexId,
        k: usize,
        min_ratio: f64,
    ) -> &KnnResult {
        ier_disk_into(paged, &self.objects, query, k, min_ratio, &mut self.baseline);
        self.baseline.result()
    }

    /// ε-approximate kNN ([`crate::approx_knn`]) over any
    /// [`ApproxDistanceOracle`] — one oracle probe per Euclidean candidate
    /// instead of a shortest-path computation — through the session
    /// workspaces. The oracle is passed per call (it is an index in its own
    /// right, shared like the browser), so one session can serve both exact
    /// and approximate traffic.
    pub fn approx_knn<O: ApproxDistanceOracle + ?Sized>(
        &mut self,
        oracle: &O,
        query: VertexId,
        k: usize,
    ) -> &KnnResult {
        approx_knn_into(oracle, self.browser.network(), &self.objects, query, k, &mut self.approx);
        self.approx.result()
    }

    /// Fallible flavor of [`Self::approx_knn`]: disk-oracle probe failures
    /// come back as a typed [`QueryError`]; see [`Self::try_knn`] for the
    /// contract.
    pub fn try_approx_knn<O: ApproxDistanceOracle + ?Sized>(
        &mut self,
        oracle: &O,
        query: VertexId,
        k: usize,
    ) -> Result<&KnnResult, QueryError> {
        try_approx_knn_into(
            oracle,
            self.browser.network(),
            &self.objects,
            query,
            k,
            &mut self.approx,
        )?;
        Ok(self.approx.result())
    }

    /// The result of the most recent SILC-algorithm query (`knn`/`inn`).
    pub fn last_knn_result(&self) -> &KnnResult {
        self.knn.result()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ier, ier_disk, ine, ine_disk, inn, knn};
    use silc::{BuildConfig, SilcIndex};
    use silc_network::generate::{road_network, RoadConfig};
    use silc_network::paged::write_paged;

    fn fixture() -> (Arc<SilcIndex>, Arc<ObjectSet>) {
        let g =
            Arc::new(road_network(&RoadConfig { vertices: 180, seed: 909, ..Default::default() }));
        let idx = Arc::new(
            SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 9, threads: 0 }).unwrap(),
        );
        let objects = Arc::new(ObjectSet::random(&g, 0.12, 31));
        (idx, objects)
    }

    /// Bit-level equality: same objects, same vertices, same interval bits.
    fn assert_bit_identical(a: &KnnResult, b: &KnnResult, what: &str) {
        assert_eq!(a.neighbors.len(), b.neighbors.len(), "{what}: neighbor count");
        for (x, y) in a.neighbors.iter().zip(&b.neighbors) {
            assert_eq!(x.object, y.object, "{what}: object");
            assert_eq!(x.vertex, y.vertex, "{what}: vertex");
            assert_eq!(
                x.interval.lo.to_bits(),
                y.interval.lo.to_bits(),
                "{what}: interval lower bound bits"
            );
            assert_eq!(
                x.interval.hi.to_bits(),
                y.interval.hi.to_bits(),
                "{what}: interval upper bound bits"
            );
        }
    }

    #[test]
    fn session_results_are_bit_identical_to_one_shot_wrappers() {
        let (idx, objects) = fixture();
        let engine = QueryEngine::new(idx.clone(), objects.clone());
        let mut session = engine.session();
        let g = idx.network();
        for &q in &[0u32, 45, 90, 179] {
            let q = VertexId(q);
            for k in [1usize, 5, 12] {
                for variant in [KnnVariant::Basic, KnnVariant::EarlyEstimate, KnnVariant::MinDist] {
                    let one_shot = knn(&*idx, &objects, q, k, variant);
                    assert_bit_identical(
                        session.knn(q, k, variant),
                        &one_shot,
                        &format!("knn {variant:?} q={q} k={k}"),
                    );
                }
                assert_bit_identical(
                    session.inn(q, k),
                    &inn(&*idx, &objects, q, k),
                    &format!("inn q={q} k={k}"),
                );
                assert_bit_identical(
                    session.ine(q, k),
                    &ine(g, &objects, q, k),
                    &format!("ine q={q} k={k}"),
                );
                assert_bit_identical(
                    session.ier(q, k),
                    &ier(g, &objects, q, k),
                    &format!("ier q={q} k={k}"),
                );
            }
        }
    }

    #[test]
    fn session_disk_baselines_match_one_shot() {
        let (idx, objects) = fixture();
        let g = idx.network();
        let dir = std::env::temp_dir().join("silc-session-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.pnet");
        write_paged(g, &path).unwrap();
        let paged = PagedNetwork::open(&path, 0.25).unwrap();
        let ratio = g.min_weight_ratio();
        let engine = QueryEngine::new(idx.clone(), objects.clone());
        let mut session = engine.session();
        for &q in &[3u32, 120] {
            let q = VertexId(q);
            assert_bit_identical(
                session.ine_disk(&paged, q, 6),
                &ine_disk(&paged, &objects, q, 6),
                "ine_disk",
            );
            assert_bit_identical(
                session.ier_disk(&paged, q, 6, ratio),
                &ier_disk(&paged, &objects, q, 6, ratio),
                "ier_disk",
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn session_approx_knn_is_bit_identical_to_one_shot() {
        let (idx, objects) = fixture();
        let g = idx.network();
        let oracle = silc_pcp::DistanceOracle::build(g, 9, 8.0);
        let engine = QueryEngine::new(idx.clone(), objects.clone());
        let mut session = engine.session();
        for &q in &[0u32, 60, 150] {
            let q = VertexId(q);
            for k in [1usize, 5, 11] {
                let one_shot = crate::approx_knn(&oracle, g, &objects, q, k);
                assert_bit_identical(
                    session.approx_knn(&oracle, q, k),
                    &one_shot,
                    &format!("approx_knn q={q} k={k}"),
                );
            }
        }
    }

    #[test]
    fn fallible_session_methods_are_bit_identical_to_infallible() {
        // try_knn/try_inn/try_approx_knn run the same cores as their
        // panicking twins; on a healthy index every Ok answer must match
        // bit for bit.
        let (idx, objects) = fixture();
        let oracle = silc_pcp::DistanceOracle::build(idx.network(), 9, 8.0);
        let engine = QueryEngine::new(idx.clone(), objects.clone());
        let mut session = engine.session();
        let mut fallible = engine.session();
        for &q in &[0u32, 77, 179] {
            let q = VertexId(q);
            for k in [1usize, 6] {
                let a = session.knn(q, k, KnnVariant::MinDist).clone();
                assert_bit_identical(
                    fallible.try_knn(q, k, KnnVariant::MinDist).unwrap(),
                    &a,
                    "try_knn",
                );
                let a = session.inn(q, k).clone();
                assert_bit_identical(fallible.try_inn(q, k).unwrap(), &a, "try_inn");
                let a = session.approx_knn(&oracle, q, k).clone();
                assert_bit_identical(
                    fallible.try_approx_knn(&oracle, q, k).unwrap(),
                    &a,
                    "try_approx_knn",
                );
            }
        }
    }

    #[test]
    fn session_stats_match_one_shot() {
        // Workspace reuse must not change any reported counter: the figures
        // drawn from QueryStats may not depend on which path ran the query.
        let (idx, objects) = fixture();
        let engine = QueryEngine::new(idx.clone(), objects.clone());
        let mut session = engine.session();
        for &q in &[7u32, 66] {
            let q = VertexId(q);
            let s = session.knn(q, 8, KnnVariant::MinDist).stats;
            let o = knn(&*idx, &objects, q, 8, KnnVariant::MinDist).stats;
            assert_eq!(s.refinements, o.refinements);
            assert_eq!(s.max_queue, o.max_queue);
            assert_eq!(s.queue_pushes, o.queue_pushes);
            assert_eq!(s.kmindist_pruned, o.kmindist_pruned);
            assert_eq!(s.d0k.map(f64::to_bits), o.d0k.map(f64::to_bits));
        }
    }

    #[test]
    fn interleaved_queries_do_not_contaminate_each_other() {
        // Alternate algorithms, k, and query vertices through ONE session;
        // every answer must equal its fresh-workspace twin.
        let (idx, objects) = fixture();
        let engine = QueryEngine::new(idx.clone(), objects.clone());
        let mut session = engine.session();
        let qs = [0u32, 150, 23, 88, 42];
        for (i, &q) in qs.iter().enumerate() {
            let q = VertexId(q);
            let k = 1 + (i * 3) % 9;
            match i % 3 {
                0 => assert_bit_identical(
                    session.knn(q, k, KnnVariant::Basic),
                    &knn(&*idx, &objects, q, k, KnnVariant::Basic),
                    "interleaved knn",
                ),
                1 => assert_bit_identical(
                    session.inn(q, k),
                    &inn(&*idx, &objects, q, k),
                    "interleaved inn",
                ),
                _ => assert_bit_identical(
                    session.ine(q, k),
                    &ine(idx.network(), &objects, q, k),
                    "interleaved ine",
                ),
            }
        }
    }

    #[test]
    fn engine_is_cloneable_and_shareable() {
        let (idx, objects) = fixture();
        let engine = QueryEngine::new(idx, objects);
        let clone = engine.clone();
        assert!(Arc::ptr_eq(engine.browser(), clone.browser()));
        assert!(Arc::ptr_eq(engine.objects(), clone.objects()));
        let handles: Vec<_> = (0..3u32)
            .map(|t| {
                let engine = engine.clone();
                std::thread::spawn(move || {
                    let mut s = engine.session();
                    s.knn(VertexId(t * 17), 4, KnnVariant::Basic).neighbors.len()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 4);
        }
    }
}
