//! The secondary priority structure `L` of the kNN algorithm.
//!
//! `L` holds the best k candidate objects seen so far, ordered by the upper
//! bound `δ+` of their distance intervals; `Dk` — the δ+ of the kth
//! element — is the pruning radius everything else is tested against
//! (paper p.22). The list is tiny (≤ k entries) and updated with interval
//! refinements, so a sorted vector beats any fancier structure.

use crate::objects::ObjectId;
use silc::DistInterval;

/// The candidate list `L`: at most `k` objects ordered by `δ+`.
#[derive(Debug, Clone)]
pub struct CandidateList {
    k: usize,
    /// `(δ+, δ−, object)` sorted ascending by `δ+` (ties: object id).
    entries: Vec<(f64, f64, ObjectId)>,
}

impl CandidateList {
    /// An empty list with capacity `k`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        CandidateList { k, entries: Vec::with_capacity(k + 1) }
    }

    /// Empties the list and re-targets it at a new `k`, keeping the grown
    /// allocation — the session reuse path.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn reset(&mut self, k: usize) {
        assert!(k > 0, "k must be positive");
        self.k = k;
        self.entries.clear();
    }

    /// `Dk`: the δ+ of the kth candidate, or ∞ while fewer than k are known.
    #[inline]
    pub fn dk(&self) -> f64 {
        if self.entries.len() == self.k {
            self.entries[self.k - 1].0
        } else {
            f64::INFINITY
        }
    }

    /// The δ− of the kth candidate (`None` while not full). One ingredient
    /// of the `KMINDIST` bound of kNN-M.
    #[inline]
    pub fn kth_lo(&self) -> Option<f64> {
        (self.entries.len() == self.k).then(|| self.entries[self.k - 1].1)
    }

    /// Number of candidates currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no candidates are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when k candidates are held.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.k
    }

    /// Is the object currently a candidate?
    pub fn contains(&self, o: ObjectId) -> bool {
        self.entries.iter().any(|&(_, _, e)| e == o)
    }

    /// Inserts or updates an object with its current interval. The object
    /// enters only if it beats the current `Dk` (or the list is not full);
    /// the worst candidate is evicted on overflow. Returns `true` if the
    /// object is in the list afterwards.
    pub fn upsert(&mut self, o: ObjectId, interval: DistInterval) -> bool {
        self.remove(o);
        if self.entries.len() == self.k && interval.hi >= self.dk() {
            return false;
        }
        let key = (interval.hi, o);
        let pos = self.entries.partition_point(|&(hi, _, id)| (hi, id) < key);
        self.entries.insert(pos, (interval.hi, interval.lo, o));
        if self.entries.len() > self.k {
            self.entries.pop();
        }
        debug_assert!(self.entries.len() <= self.k);
        self.contains(o)
    }

    /// Removes an object if present; returns whether it was there.
    pub fn remove(&mut self, o: ObjectId) -> bool {
        if let Some(pos) = self.entries.iter().position(|&(_, _, e)| e == o) {
            self.entries.remove(pos);
            true
        } else {
            false
        }
    }

    /// The candidates as `(object, δ−, δ+)`, ascending by δ+.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, f64, f64)> + '_ {
        self.entries.iter().map(|&(hi, lo, o)| (o, lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> DistInterval {
        DistInterval::new(lo, hi)
    }

    #[test]
    fn dk_is_infinite_until_full() {
        let mut l = CandidateList::new(2);
        assert_eq!(l.dk(), f64::INFINITY);
        l.upsert(ObjectId(0), iv(1.0, 5.0));
        assert_eq!(l.dk(), f64::INFINITY);
        l.upsert(ObjectId(1), iv(2.0, 3.0));
        assert_eq!(l.dk(), 5.0);
        assert_eq!(l.kth_lo(), Some(1.0));
    }

    #[test]
    fn better_candidates_evict_worse() {
        let mut l = CandidateList::new(2);
        l.upsert(ObjectId(0), iv(1.0, 5.0));
        l.upsert(ObjectId(1), iv(2.0, 3.0));
        assert!(l.upsert(ObjectId(2), iv(0.5, 2.0)));
        assert_eq!(l.dk(), 3.0);
        assert!(!l.contains(ObjectId(0)), "worst candidate evicted");
        // A candidate not beating Dk is rejected.
        assert!(!l.upsert(ObjectId(3), iv(0.0, 10.0)));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn upsert_replaces_existing_entry() {
        let mut l = CandidateList::new(3);
        l.upsert(ObjectId(7), iv(1.0, 9.0));
        l.upsert(ObjectId(7), iv(2.0, 4.0));
        assert_eq!(l.len(), 1);
        let all: Vec<_> = l.iter().collect();
        assert_eq!(all, vec![(ObjectId(7), 2.0, 4.0)]);
    }

    #[test]
    fn remove_reports_presence() {
        let mut l = CandidateList::new(2);
        l.upsert(ObjectId(1), iv(0.0, 1.0));
        assert!(l.remove(ObjectId(1)));
        assert!(!l.remove(ObjectId(1)));
        assert!(l.is_empty());
    }

    #[test]
    fn iteration_is_by_upper_bound() {
        let mut l = CandidateList::new(3);
        l.upsert(ObjectId(0), iv(0.0, 3.0));
        l.upsert(ObjectId(1), iv(0.0, 1.0));
        l.upsert(ObjectId(2), iv(0.0, 2.0));
        let order: Vec<u32> = l.iter().map(|(o, _, _)| o.0).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let _ = CandidateList::new(0);
    }
}
