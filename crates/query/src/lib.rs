//! k-nearest-neighbor query processing over SILC indexes.
//!
//! This crate implements the query side of the paper: the non-incremental
//! best-first **kNN** algorithm (two priority structures `Q` and `L`, `Dk`
//! pruning, collision-driven refinement — paper §6), its variants
//!
//! * **INN** — the incremental algorithm kNN improves upon,
//! * **kNN-I** — additionally prunes queue insertions with the early
//!   estimate `D⁰k` obtained from the first k objects encountered,
//! * **kNN-M** — additionally confirms objects against `KMINDIST` (the
//!   minimum possible distance of the kth neighbor), giving up sorted
//!   output to skip most refinements,
//!
//! and the two competitors from Papadias et al. (VLDB 2003) the paper
//! evaluates against:
//!
//! * **INE** — incremental network expansion (Dijkstra with an object
//!   buffer),
//! * **IER** — incremental Euclidean restriction (Euclidean NN filter +
//!   one shortest-path computation per candidate).
//!
//! All SILC-based algorithms are generic over [`silc::DistanceBrowser`], so
//! they run identically against the in-memory and the disk-resident index;
//! every run returns [`QueryStats`] with the counters the paper's figures
//! report (refinements, maximum queue size, `D⁰k`/`KMINDIST` quality,
//! KMINDIST prunes, Dijkstra visits).
//!
//! ## The serving layer: engines and sessions
//!
//! Every algorithm exists in two forms sharing one implementation:
//!
//! * a **free function** (`knn`, `inn`, `ine`, `ier`, `ine_disk`,
//!   `ier_disk`) — a one-shot wrapper that builds a fresh workspace per
//!   call; convenient for tests and scripts,
//! * a **session method** ([`QuerySession::knn`], …) — runs the same core
//!   over the session's reusable workspaces (priority queue, object-state
//!   map, candidate list, Dijkstra arrays, result buffers), so a
//!   steady-state query performs **zero hot-path heap allocations**.
//!
//! The serving stack is also **oracle-generic**: [`ApproxDistanceOracle`]
//! abstracts the ε-approximate distance oracles of `silc-pcp` (memory and
//! disk-resident alike), and [`approx_knn`] / [`QuerySession::approx_knn`]
//! run IER-style kNN over one — a single oracle probe per candidate in
//! place of a shortest-path computation, with intervals that stay honest
//! about the ε error. This is what lets the paper's two halves (exact SILC
//! vs approximate PCP) be compared from the same disk substrate under the
//! same concurrency (`bench_tradeoff` in `silc-bench`).
//!
//! A [`QueryEngine`] pairs a shared `Arc` index with a shared object set
//! and is `Send + Sync`: clone it into every worker thread and open one
//! [`QuerySession`] per worker. Results from session methods are borrowed
//! from the session's buffers and are bit-identical to the one-shot
//! wrappers (locked by tests). Paired with the sharded buffer pool and the
//! decoded-entries cache of `DiskSilcIndex`, this is the crate's concurrent
//! query-serving architecture; `bench_throughput` in `silc-bench` measures
//! it end to end.
//!
//! The same engine/session pattern extends across spatial shards:
//! [`PartitionedEngine`] / [`PartitionedSession`] (module [`router`]) route
//! a kNN over a `silc::PartitionedSilcIndex` — exact merging in the query's
//! home shard, sound distance intervals for cross-cut candidates, and a
//! `complete` flag certifying provably exact answers. `bench_scale` in
//! `silc-bench` drives it at 100 k vertices.
//!
//! Every session entry point has a fallible twin ([`QuerySession::try_knn`],
//! [`QuerySession::try_inn`], [`QuerySession::try_approx_knn`]) that
//! surfaces disk faults as typed [`silc::QueryError`]s instead of
//! panicking, and the partitioned router degrades gracefully when a shard
//! dies — healthy shards keep serving, the answer stays sound, and the
//! dead shards are reported in `degraded` (see [`router`]'s module docs).

pub mod approx;
pub mod baselines;
pub mod baselines_disk;
pub mod candidates;
pub mod edge_objects;
pub mod knn;
pub mod objects;
pub mod range;
pub mod result;
pub mod routable;
pub mod router;
pub mod session;
pub mod verify;

pub use approx::{approx_knn, try_approx_knn, ApproxDistanceOracle, ApproxScratch};
pub use baselines::{ier, ine, BaselineScratch};
pub use baselines_disk::{ier_disk, ine_disk};
pub use edge_objects::{EdgeObject, EdgeObjectDistance};
pub use knn::{inn, knn, try_inn, try_knn, KnnScratch, KnnVariant};
pub use objects::{ObjectId, ObjectSet};
pub use range::{within_distance, RangeResult};
pub use result::{KnnResult, Neighbor, QueryStats};
pub use routable::{Routable, RoutedAnswer, RoutingSession};
pub use router::{
    partitioned_knn, PartitionedEngine, PartitionedKnnResult, PartitionedNeighbor,
    PartitionedSession, RouterStats,
};
pub use session::{QueryEngine, QuerySession};
