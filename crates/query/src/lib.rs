//! k-nearest-neighbor query processing over SILC indexes.
//!
//! This crate implements the query side of the paper: the non-incremental
//! best-first **kNN** algorithm (two priority structures `Q` and `L`, `Dk`
//! pruning, collision-driven refinement — paper §6), its variants
//!
//! * **INN** — the incremental algorithm kNN improves upon,
//! * **kNN-I** — additionally prunes queue insertions with the early
//!   estimate `D⁰k` obtained from the first k objects encountered,
//! * **kNN-M** — additionally confirms objects against `KMINDIST` (the
//!   minimum possible distance of the kth neighbor), giving up sorted
//!   output to skip most refinements,
//!
//! and the two competitors from Papadias et al. (VLDB 2003) the paper
//! evaluates against:
//!
//! * **INE** — incremental network expansion (Dijkstra with an object
//!   buffer),
//! * **IER** — incremental Euclidean restriction (Euclidean NN filter +
//!   one shortest-path computation per candidate).
//!
//! All SILC-based algorithms are generic over [`silc::DistanceBrowser`], so
//! they run identically against the in-memory and the disk-resident index;
//! every run returns [`QueryStats`] with the counters the paper's figures
//! report (refinements, maximum queue size, `D⁰k`/`KMINDIST` quality,
//! KMINDIST prunes, Dijkstra visits).

pub mod baselines;
pub mod baselines_disk;
pub mod candidates;
pub mod edge_objects;
pub mod knn;
pub mod objects;
pub mod range;
pub mod result;
pub mod verify;

pub use baselines::{ier, ine};
pub use baselines_disk::{ier_disk, ine_disk};
pub use edge_objects::{EdgeObject, EdgeObjectDistance};
pub use knn::{inn, knn, KnnVariant};
pub use objects::{ObjectId, ObjectSet};
pub use range::{within_distance, RangeResult};
pub use result::{KnnResult, Neighbor, QueryStats};
