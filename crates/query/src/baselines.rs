//! The competitor algorithms of Papadias, Zhang, Mamoulis & Tao (VLDB 2003)
//! the paper evaluates against.
//!
//! Neither uses the SILC index: INE runs Dijkstra over the network itself;
//! IER filters by Euclidean distance and verifies each candidate with a
//! separate shortest-path computation. Their costs scale with the number of
//! network vertices/edges within the kth-neighbor radius, which is exactly
//! what the paper's execution-time figures exploit.
//!
//! Like the SILC algorithms, both run over a reusable workspace
//! ([`BaselineScratch`]: the Dijkstra arrays, heaps, and result buffers) so
//! a [`crate::QuerySession`] pays the `O(n)` allocations once; the free
//! functions are one-shot wrappers. The disk-resident twins in
//! [`crate::baselines_disk`] share the same scratch.

use crate::objects::{ObjectId, ObjectSet};
use crate::result::{KnnResult, Neighbor, QueryStats};
use silc::DistInterval;
use silc_network::{SpatialNetwork, VertexId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Max-heap entry of (distance, object) — the working k-best buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Best {
    pub(crate) dist: f64,
    pub(crate) object: ObjectId,
}

impl Eq for Best {}

impl Ord for Best {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist.total_cmp(&other.dist).then_with(|| self.object.cmp(&other.object))
    }
}

impl PartialOrd for Best {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap entry of (distance, vertex) for the Dijkstra expansions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct HeapEntry {
    pub(crate) dist: f64,
    pub(crate) vertex: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other.dist.total_cmp(&self.dist).then_with(|| other.vertex.cmp(&self.vertex))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The reusable workspaces of the INE/IER family (in-memory and disk): the
/// k-best buffer, the Dijkstra distance/settled arrays and frontier heap,
/// an adjacency staging buffer for the paged variants, and the result.
pub struct BaselineScratch {
    pub(crate) best: BinaryHeap<Best>,
    /// Sink for sorting `best` without consuming its allocation.
    sorted: Vec<Best>,
    pub(crate) dist: Vec<f64>,
    pub(crate) settled: Vec<bool>,
    pub(crate) heap: BinaryHeap<HeapEntry>,
    pub(crate) adjacency: Vec<(VertexId, f64)>,
    pub(crate) result: KnnResult,
}

impl Default for BaselineScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl BaselineScratch {
    /// Empty workspaces; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        BaselineScratch {
            best: BinaryHeap::new(),
            sorted: Vec::new(),
            dist: Vec::new(),
            settled: Vec::new(),
            heap: BinaryHeap::new(),
            adjacency: Vec::new(),
            result: KnnResult::default(),
        }
    }

    /// The result of the most recent query run through this scratch.
    pub fn result(&self) -> &KnnResult {
        &self.result
    }

    /// Consumes the scratch, yielding the last result — the one-shot path.
    pub fn into_result(self) -> KnnResult {
        self.result
    }

    /// Clears per-query state (allocations are retained).
    pub(crate) fn begin(&mut self) {
        self.best.clear();
        self.sorted.clear();
        self.heap.clear();
        self.result.neighbors.clear();
        self.result.stats = QueryStats::default();
    }

    /// Re-initializes the Dijkstra arrays for an `n`-vertex expansion.
    pub(crate) fn reset_dijkstra(&mut self, n: usize) {
        self.dist.clear();
        self.dist.resize(n, f64::INFINITY);
        self.settled.clear();
        self.settled.resize(n, false);
        self.heap.clear();
    }

    /// Drains `best` (ascending) into `result.neighbors` as exact-distance
    /// neighbors — the shared tail of every algorithm in this family.
    pub(crate) fn finalize(&mut self, objects: &ObjectSet) {
        self.sorted.clear();
        self.sorted.extend(self.best.drain());
        self.sorted.sort_unstable();
        self.result.neighbors.extend(self.sorted.iter().map(|b| Neighbor {
            object: b.object,
            vertex: objects.vertex(b.object),
            interval: DistInterval::exact(b.dist),
        }));
    }

    /// Offers `(dist, object)` to the k-best buffer.
    #[inline]
    pub(crate) fn offer(&mut self, k: usize, dist: f64, object: ObjectId) {
        if self.best.len() < k {
            self.best.push(Best { dist, object });
        } else if dist < self.best.peek().expect("k > 0").dist {
            self.best.push(Best { dist, object });
            self.best.pop();
        }
    }

    /// Current kth-best distance (∞ while fewer than k are buffered).
    #[inline]
    pub(crate) fn kth(&self, k: usize) -> f64 {
        if self.best.len() == k {
            self.best.peek().expect("k > 0").dist
        } else {
            f64::INFINITY
        }
    }
}

/// The INE loop shared by the in-memory and disk variants: Dijkstra from
/// the query vertex over whatever `out_edges` serves (an in-memory CSR or a
/// paged file), checking objects on each settled vertex, halting once the
/// next settled vertex is farther than the kth-best object. One copy of
/// the settle/relax logic — the variants differ only in the edge source.
pub(crate) fn ine_core(
    objects: &ObjectSet,
    query: VertexId,
    k: usize,
    n: usize,
    scratch: &mut BaselineScratch,
    mut out_edges: impl FnMut(VertexId, &mut Vec<(VertexId, f64)>),
) {
    assert!(k > 0, "k must be positive");
    scratch.begin();
    scratch.reset_dijkstra(n);
    let mut stats = QueryStats::default();
    scratch.dist[query.index()] = 0.0;
    scratch.heap.push(HeapEntry { dist: 0.0, vertex: query.0 });
    while let Some(HeapEntry { dist: d, vertex: u }) = scratch.heap.pop() {
        if scratch.settled[u as usize] {
            continue;
        }
        scratch.settled[u as usize] = true;
        stats.dijkstra_visited += 1;
        if scratch.best.len() == k && d > scratch.kth(k) {
            break;
        }
        stats.index_queries += 1;
        for &o in objects.objects_at(VertexId(u)) {
            scratch.offer(k, d, o);
        }
        out_edges(VertexId(u), &mut scratch.adjacency);
        for i in 0..scratch.adjacency.len() {
            let (v, w) = scratch.adjacency[i];
            let vi = v.index();
            if scratch.settled[vi] {
                continue;
            }
            let nd = d + w;
            if nd < scratch.dist[vi] {
                scratch.dist[vi] = nd;
                scratch.heap.push(HeapEntry { dist: nd, vertex: v.0 });
            }
        }
    }
    stats.max_queue = scratch.best.len();
    stats.dk_final = scratch.best.iter().map(|b| b.dist).fold(0.0, f64::max);
    scratch.result.stats = stats;
    scratch.finalize(objects);
}

/// Early-terminating point-to-point Dijkstra over the scratch arrays and
/// any edge source; returns `f64::INFINITY` when `t` is unreachable.
/// Shared by the in-memory and paged IER variants.
pub(crate) fn p2p_core(
    n: usize,
    s: VertexId,
    t: VertexId,
    scratch: &mut BaselineScratch,
    visited: &mut usize,
    mut out_edges: impl FnMut(VertexId, &mut Vec<(VertexId, f64)>),
) -> f64 {
    scratch.reset_dijkstra(n);
    scratch.dist[s.index()] = 0.0;
    scratch.heap.push(HeapEntry { dist: 0.0, vertex: s.0 });
    while let Some(HeapEntry { dist: d, vertex: u }) = scratch.heap.pop() {
        if scratch.settled[u as usize] {
            continue;
        }
        scratch.settled[u as usize] = true;
        *visited += 1;
        if u == t.0 {
            return d;
        }
        out_edges(VertexId(u), &mut scratch.adjacency);
        for i in 0..scratch.adjacency.len() {
            let (v, w) = scratch.adjacency[i];
            let vi = v.index();
            if scratch.settled[vi] {
                continue;
            }
            let nd = d + w;
            if nd < scratch.dist[vi] {
                scratch.dist[vi] = nd;
                scratch.heap.push(HeapEntry { dist: nd, vertex: v.0 });
            }
        }
    }
    f64::INFINITY
}

/// The IER loop shared by the in-memory and disk variants: draw objects in
/// Euclidean order, verify each with whatever point-to-point search `p2p`
/// provides, stop when the scaled Euclidean lower bound passes the kth-best
/// network distance.
pub(crate) fn ier_core(
    objects: &ObjectSet,
    qpos: silc_geom::Point,
    k: usize,
    min_ratio: f64,
    scratch: &mut BaselineScratch,
    mut p2p: impl FnMut(&mut BaselineScratch, VertexId, &mut usize) -> f64,
) {
    assert!(k > 0, "k must be positive");
    scratch.begin();
    let mut stats = QueryStats::default();
    for (item, euclid) in objects.quadtree().nearest_iter(qpos) {
        if scratch.best.len() == k && euclid * min_ratio > scratch.kth(k) {
            break;
        }
        stats.index_queries += 1;
        let o = ObjectId(*objects.quadtree().payload(item));
        let d = p2p(scratch, objects.vertex(o), &mut stats.dijkstra_visited);
        scratch.offer(k, d, o);
    }
    stats.dk_final = scratch.best.iter().map(|b| b.dist).fold(0.0, f64::max);
    scratch.result.stats = stats;
    scratch.finalize(objects);
}

/// Serves in-memory adjacency lists into the staging buffer (the same
/// contract `PagedNetwork::out_edges` provides for the disk variants).
fn mem_edges(network: &SpatialNetwork) -> impl FnMut(VertexId, &mut Vec<(VertexId, f64)>) + '_ {
    |u, buf| {
        buf.clear();
        buf.extend(network.out_edges(u));
    }
}

/// INE — incremental network expansion, over reusable workspaces.
///
/// Dijkstra from the query vertex, checking the objects residing on each
/// settled vertex, halting once the next settled vertex is farther than the
/// current kth-best object. Visits every edge closer than the kth neighbor
/// (paper p.26 "worst case comparison").
pub(crate) fn ine_into(
    network: &SpatialNetwork,
    objects: &ObjectSet,
    query: VertexId,
    k: usize,
    scratch: &mut BaselineScratch,
) {
    ine_core(objects, query, k, network.vertex_count(), scratch, mem_edges(network));
}

/// One-shot wrapper around `ine_into` with a fresh [`BaselineScratch`].
pub fn ine(network: &SpatialNetwork, objects: &ObjectSet, query: VertexId, k: usize) -> KnnResult {
    let mut scratch = BaselineScratch::new();
    ine_into(network, objects, query, k, &mut scratch);
    scratch.into_result()
}

/// IER — incremental Euclidean restriction, over reusable workspaces.
///
/// Draws objects in Euclidean order from the object quadtree and computes
/// each candidate's true network distance with (early-terminating)
/// Dijkstra, stopping when the next Euclidean distance — scaled by the
/// network's minimum weight/length ratio — already exceeds the kth-best
/// network distance. One shortest-path computation per candidate is why the
/// paper finds IER "always slowest".
///
/// # Panics
/// Panics if a drawn object is unreachable from `query` (objects live on
/// network vertices).
pub(crate) fn ier_into(
    network: &SpatialNetwork,
    objects: &ObjectSet,
    query: VertexId,
    k: usize,
    scratch: &mut BaselineScratch,
) {
    let n = network.vertex_count();
    let ratio = network.min_weight_ratio();
    ier_core(objects, network.position(query), k, ratio, scratch, |scratch, target, visited| {
        let d = p2p_core(n, query, target, scratch, visited, mem_edges(network));
        assert!(d.is_finite(), "objects live on reachable vertices");
        d
    });
}

/// One-shot wrapper around `ier_into` with a fresh [`BaselineScratch`].
pub fn ier(network: &SpatialNetwork, objects: &ObjectSet, query: VertexId, k: usize) -> KnnResult {
    let mut scratch = BaselineScratch::new();
    ier_into(network, objects, query, k, &mut scratch);
    scratch.into_result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::brute_force_knn;
    use silc_network::generate::{road_network, RoadConfig};

    fn fixture() -> (SpatialNetwork, ObjectSet) {
        let g = road_network(&RoadConfig { vertices: 180, seed: 55, ..Default::default() });
        let objects = ObjectSet::random(&g, 0.1, 4);
        (g, objects)
    }

    fn distances(r: &KnnResult) -> Vec<f64> {
        r.neighbors.iter().map(|n| n.interval.lo).collect()
    }

    #[test]
    fn ine_matches_brute_force() {
        let (g, objects) = fixture();
        for &q in &[0u32, 60, 120, 179] {
            let r = ine(&g, &objects, VertexId(q), 6);
            let truth = brute_force_knn(&g, &objects, VertexId(q), 6);
            assert_eq!(r.neighbors.len(), truth.len());
            for (got, &(_, want)) in distances(&r).iter().zip(&truth) {
                assert!((got - want).abs() < 1e-9, "{got} vs {want}");
            }
            assert!(r.is_sorted());
        }
    }

    #[test]
    fn ier_matches_brute_force() {
        let (g, objects) = fixture();
        for &q in &[7u32, 92, 140] {
            let r = ier(&g, &objects, VertexId(q), 6);
            let truth = brute_force_knn(&g, &objects, VertexId(q), 6);
            assert_eq!(r.neighbors.len(), truth.len());
            for (got, &(_, want)) in distances(&r).iter().zip(&truth) {
                assert!((got - want).abs() < 1e-9, "{got} vs {want}");
            }
        }
    }

    #[test]
    fn ine_and_ier_agree() {
        let (g, objects) = fixture();
        for &q in &[15u32, 85] {
            let a = ine(&g, &objects, VertexId(q), 10);
            let b = ier(&g, &objects, VertexId(q), 10);
            assert_eq!(a.object_ids(), b.object_ids());
        }
    }

    #[test]
    fn ine_visits_grow_with_sparsity() {
        // The sparser the objects, the farther INE must expand.
        let (g, _) = fixture();
        let dense = ObjectSet::random(&g, 0.3, 8);
        let sparse = ObjectSet::random(&g, 0.02, 8);
        let vd = ine(&g, &dense, VertexId(0), 5).stats.dijkstra_visited;
        let vs = ine(&g, &sparse, VertexId(0), 5).stats.dijkstra_visited;
        assert!(vs > vd, "sparse {vs} should exceed dense {vd}");
    }

    #[test]
    fn ier_counts_candidates() {
        let (g, objects) = fixture();
        let r = ier(&g, &objects, VertexId(33), 4);
        assert!(r.stats.index_queries >= 4);
        assert!(r.stats.dijkstra_visited > 0);
    }

    #[test]
    fn query_with_objects_on_query_vertex() {
        let (g, _) = fixture();
        let objects = ObjectSet::from_vertices(&g, vec![VertexId(50), VertexId(51)], 4);
        let r = ine(&g, &objects, VertexId(50), 1);
        assert_eq!(r.neighbors[0].interval, DistInterval::exact(0.0));
        let r = ier(&g, &objects, VertexId(50), 1);
        assert_eq!(r.neighbors[0].interval, DistInterval::exact(0.0));
    }
}
