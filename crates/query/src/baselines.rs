//! The competitor algorithms of Papadias, Zhang, Mamoulis & Tao (VLDB 2003)
//! the paper evaluates against.
//!
//! Neither uses the SILC index: INE runs Dijkstra over the network itself;
//! IER filters by Euclidean distance and verifies each candidate with a
//! separate shortest-path computation. Their costs scale with the number of
//! network vertices/edges within the kth-neighbor radius, which is exactly
//! what the paper's execution-time figures exploit.

use crate::objects::{ObjectId, ObjectSet};
use crate::result::{KnnResult, Neighbor, QueryStats};
use silc::DistInterval;
use silc_network::dijkstra::Expander;
use silc_network::{dijkstra, SpatialNetwork, VertexId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Max-heap entry of (distance, object) — the working k-best buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Best {
    dist: f64,
    object: ObjectId,
}

impl Eq for Best {}

impl Ord for Best {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist.total_cmp(&other.dist).then_with(|| self.object.cmp(&other.object))
    }
}

impl PartialOrd for Best {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn finalize(best: BinaryHeap<Best>, objects: &ObjectSet, stats: QueryStats) -> KnnResult {
    let mut sorted: Vec<Best> = best.into_vec();
    sorted.sort();
    KnnResult {
        neighbors: sorted
            .into_iter()
            .map(|b| Neighbor {
                object: b.object,
                vertex: objects.vertex(b.object),
                interval: DistInterval::exact(b.dist),
            })
            .collect(),
        stats,
    }
}

/// INE — incremental network expansion.
///
/// Dijkstra from the query vertex, checking the objects residing on each
/// settled vertex, halting once the next settled vertex is farther than the
/// current kth-best object. Visits every edge closer than the kth neighbor
/// (paper p.26 "worst case comparison").
pub fn ine(network: &SpatialNetwork, objects: &ObjectSet, query: VertexId, k: usize) -> KnnResult {
    assert!(k > 0, "k must be positive");
    let mut stats = QueryStats::default();
    let mut best: BinaryHeap<Best> = BinaryHeap::with_capacity(k + 1);
    let mut expander = Expander::new(network, query);
    while let Some((v, d)) = expander.next_settled() {
        if best.len() == k && d > best.peek().expect("k > 0").dist {
            break;
        }
        stats.index_queries += 1;
        for &o in objects.objects_at(v) {
            if best.len() < k {
                best.push(Best { dist: d, object: o });
            } else if d < best.peek().expect("k > 0").dist {
                best.push(Best { dist: d, object: o });
                best.pop();
            }
        }
    }
    stats.dijkstra_visited = expander.visited();
    stats.max_queue = best.len();
    stats.dk_final = best.iter().map(|b| b.dist).fold(0.0, f64::max);
    finalize(best, objects, stats)
}

/// IER — incremental Euclidean restriction.
///
/// Draws objects in Euclidean order from the object quadtree and computes
/// each candidate's true network distance with (early-terminating)
/// Dijkstra, stopping when the next Euclidean distance — scaled by the
/// network's minimum weight/length ratio — already exceeds the kth-best
/// network distance. One shortest-path computation per candidate is why the
/// paper finds IER "always slowest".
pub fn ier(network: &SpatialNetwork, objects: &ObjectSet, query: VertexId, k: usize) -> KnnResult {
    assert!(k > 0, "k must be positive");
    let mut stats = QueryStats::default();
    let ratio = network.min_weight_ratio();
    let qpos = network.position(query);
    let mut best: BinaryHeap<Best> = BinaryHeap::with_capacity(k + 1);
    for (item, euclid) in objects.quadtree().nearest_iter(qpos) {
        if best.len() == k && euclid * ratio > best.peek().expect("k > 0").dist {
            break;
        }
        stats.index_queries += 1;
        let o = ObjectId(*objects.quadtree().payload(item));
        let target = objects.vertex(o);
        let result = dijkstra::point_to_point(network, query, target)
            .expect("objects live on reachable vertices");
        stats.dijkstra_visited += result.visited;
        if best.len() < k {
            best.push(Best { dist: result.distance, object: o });
        } else if result.distance < best.peek().expect("k > 0").dist {
            best.push(Best { dist: result.distance, object: o });
            best.pop();
        }
    }
    stats.dk_final = best.iter().map(|b| b.dist).fold(0.0, f64::max);
    finalize(best, objects, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::brute_force_knn;
    use silc_network::generate::{road_network, RoadConfig};

    fn fixture() -> (SpatialNetwork, ObjectSet) {
        let g = road_network(&RoadConfig { vertices: 180, seed: 55, ..Default::default() });
        let objects = ObjectSet::random(&g, 0.1, 4);
        (g, objects)
    }

    fn distances(r: &KnnResult) -> Vec<f64> {
        r.neighbors.iter().map(|n| n.interval.lo).collect()
    }

    #[test]
    fn ine_matches_brute_force() {
        let (g, objects) = fixture();
        for &q in &[0u32, 60, 120, 179] {
            let r = ine(&g, &objects, VertexId(q), 6);
            let truth = brute_force_knn(&g, &objects, VertexId(q), 6);
            assert_eq!(r.neighbors.len(), truth.len());
            for (got, &(_, want)) in distances(&r).iter().zip(&truth) {
                assert!((got - want).abs() < 1e-9, "{got} vs {want}");
            }
            assert!(r.is_sorted());
        }
    }

    #[test]
    fn ier_matches_brute_force() {
        let (g, objects) = fixture();
        for &q in &[7u32, 92, 140] {
            let r = ier(&g, &objects, VertexId(q), 6);
            let truth = brute_force_knn(&g, &objects, VertexId(q), 6);
            assert_eq!(r.neighbors.len(), truth.len());
            for (got, &(_, want)) in distances(&r).iter().zip(&truth) {
                assert!((got - want).abs() < 1e-9, "{got} vs {want}");
            }
        }
    }

    #[test]
    fn ine_and_ier_agree() {
        let (g, objects) = fixture();
        for &q in &[15u32, 85] {
            let a = ine(&g, &objects, VertexId(q), 10);
            let b = ier(&g, &objects, VertexId(q), 10);
            assert_eq!(a.object_ids(), b.object_ids());
        }
    }

    #[test]
    fn ine_visits_grow_with_sparsity() {
        // The sparser the objects, the farther INE must expand.
        let (g, _) = fixture();
        let dense = ObjectSet::random(&g, 0.3, 8);
        let sparse = ObjectSet::random(&g, 0.02, 8);
        let vd = ine(&g, &dense, VertexId(0), 5).stats.dijkstra_visited;
        let vs = ine(&g, &sparse, VertexId(0), 5).stats.dijkstra_visited;
        assert!(vs > vd, "sparse {vs} should exceed dense {vd}");
    }

    #[test]
    fn ier_counts_candidates() {
        let (g, objects) = fixture();
        let r = ier(&g, &objects, VertexId(33), 4);
        assert!(r.stats.index_queries >= 4);
        assert!(r.stats.dijkstra_visited > 0);
    }

    #[test]
    fn query_with_objects_on_query_vertex() {
        let (g, _) = fixture();
        let objects = ObjectSet::from_vertices(&g, vec![VertexId(50), VertexId(51)], 4);
        let r = ine(&g, &objects, VertexId(50), 1);
        assert_eq!(r.neighbors[0].interval, DistInterval::exact(0.0));
        let r = ier(&g, &objects, VertexId(50), 1);
        assert_eq!(r.neighbors[0].interval, DistInterval::exact(0.0));
    }
}
