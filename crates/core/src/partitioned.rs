//! A partitioned disk-resident index: one [`DiskSilcIndex`] per spatial
//! shard.
//!
//! [`SilcIndex::build`] runs one full-graph SSSP per vertex — O(n²·log n)
//! total, the scaling wall the paper flags. [`PartitionedSilcIndex`]
//! splits the network with [`partition_network`] and builds an
//! independent index over each shard's *induced* subnetwork: every SSSP
//! stops at the shard boundary, so total precompute work drops from n
//! full-graph SSSPs to Σ shard-local work — for k balanced shards, about
//! a k-fold reduction, at the price of exactness across the cut. Each
//! shard build runs the existing self-scheduling worker machinery of
//! [`SilcIndex::build`] internally, and shards are built one after
//! another so peak memory stays one in-memory shard index.
//!
//! A shard index answers *within-shard* distances exactly; paths that
//! cross the cut are the query router's problem (`silc-query`'s
//! cross-shard kNN), which combines shard-local intervals with the
//! partition's cut-edge frontier to stay sound.

use crate::disk::{write_index, DiskSilcIndex};
use crate::error::BuildError;
use crate::frontier::{self, FrontierTier};
use crate::index::{BuildConfig, SilcIndex};
use silc_network::partition::{partition_network, NetworkPartition, PartitionError};
use silc_network::{PartitionConfig, SpatialNetwork};
use std::fmt;
use std::fs;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Configuration for [`PartitionedSilcIndex::build_in_dir`].
#[derive(Debug, Clone)]
pub struct PartitionedBuildConfig {
    /// How to split the network (shard count, Morton seeding).
    pub partition: PartitionConfig,
    /// Grid exponent of each per-shard index.
    pub grid_exponent: u32,
    /// Worker threads per shard build; `0` means all available cores.
    pub threads: usize,
    /// Buffer-pool fraction of each opened shard index.
    pub cache_fraction: f64,
}

impl Default for PartitionedBuildConfig {
    fn default() -> Self {
        PartitionedBuildConfig {
            partition: PartitionConfig::default(),
            grid_exponent: 11,
            threads: 0,
            cache_fraction: 0.05,
        }
    }
}

/// Why a partitioned build (or open) failed.
#[derive(Debug)]
pub enum PartitionedBuildError {
    /// The partitioner rejected the network.
    Partition(PartitionError),
    /// Building, writing, or opening one shard's index failed. A likely
    /// cause on *directed* networks: the shard is weakly but not strongly
    /// connected, surfacing as [`BuildError::Unreachable`].
    Shard {
        /// Which shard.
        shard: usize,
        /// The underlying error.
        source: BuildError,
    },
    /// Directory-level I/O failed.
    Io(std::io::Error),
}

impl fmt::Display for PartitionedBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionedBuildError::Partition(e) => write!(f, "partitioning failed: {e}"),
            PartitionedBuildError::Shard { shard, source } => {
                write!(f, "shard {shard}: {source}")
            }
            PartitionedBuildError::Io(e) => write!(f, "index directory: {e}"),
        }
    }
}

impl std::error::Error for PartitionedBuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PartitionedBuildError::Partition(e) => Some(e),
            PartitionedBuildError::Shard { source, .. } => Some(source),
            PartitionedBuildError::Io(e) => Some(e),
        }
    }
}

impl From<PartitionError> for PartitionedBuildError {
    fn from(e: PartitionError) -> Self {
        PartitionedBuildError::Partition(e)
    }
}

impl From<std::io::Error> for PartitionedBuildError {
    fn from(e: std::io::Error) -> Self {
        PartitionedBuildError::Io(e)
    }
}

/// A non-fatal degradation recorded while opening an index directory.
///
/// [`PartitionedSilcIndex::open_dir`] prefers opening *something sound*
/// over failing: a frontier tier that exists but does not validate is
/// dropped and the query router falls back to interval-based cross-shard
/// routing. That fallback used to be silent — indistinguishable from a
/// directory that never had a tier — which made "why did `complete` go
/// false?" undiagnosable from the serving side. Every such decision is now
/// recorded here and exposed through
/// [`PartitionedSilcIndex::open_warnings`], so a server can report it in a
/// status frame.
#[derive(Debug, Clone, PartialEq)]
pub enum OpenWarning {
    /// A component of the directory failed validation and the index opened
    /// without it, degrading answer quality but not soundness.
    DegradedOpen {
        /// Which component was dropped (e.g. `"frontier tier"`).
        component: String,
        /// The validation error that caused the drop.
        detail: String,
    },
}

impl fmt::Display for OpenWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpenWarning::DegradedOpen { component, detail } => {
                write!(f, "degraded open: {component} dropped: {detail}")
            }
        }
    }
}

/// Wall-clock split of one [`PartitionedSilcIndex::build_in_dir`] run, so
/// benchmarks can report the shard-index cost and the frontier-tier
/// precompute separately.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuildTimings {
    /// Seconds spent building, writing and re-opening the shard indexes.
    pub shards_s: f64,
    /// Seconds spent on the frontier-tier SSSPs, encode, and write.
    pub frontier_s: f64,
}

/// One disk-resident SILC index per spatial shard, plus the partition
/// that maps between global and shard-local vertex ids, plus the
/// frontier-distance tier (see [`crate::frontier`]) with exact
/// shard-internal distances from every cut-edge endpoint.
pub struct PartitionedSilcIndex {
    network: Arc<SpatialNetwork>,
    partition: Arc<NetworkPartition>,
    shards: Vec<Arc<DiskSilcIndex>>,
    shard_bytes: Vec<u64>,
    tier: Option<Arc<FrontierTier>>,
    frontier_bytes: u64,
    timings: Option<BuildTimings>,
    warnings: Vec<OpenWarning>,
}

/// File name of shard `s` inside the index directory.
fn shard_file(s: usize) -> String {
    format!("shard-{s:04}.idx")
}

impl PartitionedSilcIndex {
    /// Partitions `network`, builds one index per shard, writes each to
    /// `dir/shard-NNNN.idx`, and opens them disk-resident. Shards build
    /// sequentially (each build parallelizes internally per `cfg.threads`),
    /// so peak memory is a single in-memory shard index.
    pub fn build_in_dir<P: AsRef<Path>>(
        network: Arc<SpatialNetwork>,
        dir: P,
        cfg: &PartitionedBuildConfig,
    ) -> Result<Self, PartitionedBuildError> {
        let dir = dir.as_ref();
        let partition = Arc::new(partition_network(&network, &cfg.partition)?);
        fs::create_dir_all(dir)?;
        let build_cfg = BuildConfig { grid_exponent: cfg.grid_exponent, threads: cfg.threads };
        let mut shards = Vec::with_capacity(partition.shard_count());
        let mut shard_bytes = Vec::with_capacity(partition.shard_count());
        let shards_started = Instant::now();
        for (s, shard) in partition.shards().iter().enumerate() {
            let wrap = |source: BuildError| PartitionedBuildError::Shard { shard: s, source };
            let built =
                SilcIndex::build(Arc::clone(shard.network_arc()), &build_cfg).map_err(wrap)?;
            let path = dir.join(shard_file(s));
            write_index(&built, &path).map_err(wrap)?;
            drop(built); // free the in-memory trees before the next shard
            let disk =
                DiskSilcIndex::open(&path, Arc::clone(shard.network_arc()), cfg.cache_fraction)
                    .map_err(wrap)?;
            shard_bytes.push(fs::metadata(&path)?.len());
            shards.push(Arc::new(disk));
        }
        let shards_s = shards_started.elapsed().as_secs_f64();

        // The frontier-distance tier: |F_s| shard-confined SSSPs per shard
        // (parallel), persisted alongside the shard files. Shards are
        // strongly connected here — every shard index build above succeeded.
        let frontier_started = Instant::now();
        let tier_bytes = frontier::build_tier(&partition, cfg.threads);
        let tier_path = dir.join(frontier::FILE_NAME);
        frontier::write_tier(&tier_bytes, &tier_path)?;
        let tier =
            FrontierTier::open(&tier_path, &partition, cfg.cache_fraction).map_err(|source| {
                PartitionedBuildError::Shard { shard: partition.shard_count(), source }
            })?;
        let frontier_bytes = fs::metadata(&tier_path)?.len();
        let frontier_s = frontier_started.elapsed().as_secs_f64();

        Ok(PartitionedSilcIndex {
            network,
            partition,
            shards,
            shard_bytes,
            tier: Some(Arc::new(tier)),
            frontier_bytes,
            timings: Some(BuildTimings { shards_s, frontier_s }),
            warnings: Vec::new(),
        })
    }

    /// Re-opens an index directory written by
    /// [`PartitionedSilcIndex::build_in_dir`] with the same `network` and
    /// partition configuration. The partition is recomputed (it is
    /// deterministic), so a mismatched configuration surfaces as a header
    /// validation error on the first shard whose vertex count differs.
    pub fn open_dir<P: AsRef<Path>>(
        network: Arc<SpatialNetwork>,
        dir: P,
        cfg: &PartitionedBuildConfig,
    ) -> Result<Self, PartitionedBuildError> {
        Self::open_dir_with(network, dir, cfg, |_, store| Box::new(store))
    }

    /// Like [`Self::open_dir`], but `wrap` may replace each shard's page
    /// store before the shard index is built over it — the seam fault-
    /// injection tests use to make individual shards flaky or dead.
    /// `wrap` receives the shard number and the freshly opened file store.
    pub fn open_dir_with<P: AsRef<Path>>(
        network: Arc<SpatialNetwork>,
        dir: P,
        cfg: &PartitionedBuildConfig,
        mut wrap: impl FnMut(usize, silc_storage::FilePageStore) -> Box<dyn silc_storage::PageStore>,
    ) -> Result<Self, PartitionedBuildError> {
        let dir = dir.as_ref();
        let partition = Arc::new(partition_network(&network, &cfg.partition)?);
        let mut shards = Vec::with_capacity(partition.shard_count());
        let mut shard_bytes = Vec::with_capacity(partition.shard_count());
        for (s, shard) in partition.shards().iter().enumerate() {
            let path = dir.join(shard_file(s));
            let wrap_err = |source: BuildError| PartitionedBuildError::Shard { shard: s, source };
            let store = silc_storage::FilePageStore::open(&path)
                .map_err(|e| wrap_err(BuildError::Io(e)))?;
            let local = Arc::clone(shard.network_arc());
            let cache = silc_storage::default_decoded_capacity(local.vertex_count());
            let disk = DiskSilcIndex::from_store(wrap(s, store), local, cfg.cache_fraction, cache)
                .map_err(wrap_err)?;
            shard_bytes.push(fs::metadata(&path)?.len());
            shards.push(Arc::new(disk));
        }

        // The frontier tier is optional at open time: directories written
        // before the tier existed (or whose tier file fails validation)
        // still open, and the query router falls back to its sound
        // interval-based cross-shard path. A tier that *exists* but fails
        // validation is a DegradedOpen warning — the caller (a server
        // status frame, an operator) must be able to tell "never had a
        // tier" from "had one and lost it". `wrap` sees the tier store
        // with shard number == shard_count — *after* every real shard — so
        // fault-injection handles indexed by shard number stay stable.
        let tier_path = dir.join(frontier::FILE_NAME);
        let mut frontier_bytes = 0;
        let mut warnings = Vec::new();
        let tier = if tier_path.exists() {
            match silc_storage::FilePageStore::open(&tier_path).map_err(BuildError::Io).and_then(
                |store| {
                    FrontierTier::from_store(
                        wrap(partition.shard_count(), store),
                        &partition,
                        cfg.cache_fraction,
                    )
                },
            ) {
                Ok(t) => {
                    frontier_bytes = fs::metadata(&tier_path).map(|m| m.len()).unwrap_or(0);
                    Some(Arc::new(t))
                }
                Err(e) => {
                    warnings.push(OpenWarning::DegradedOpen {
                        component: "frontier tier".to_string(),
                        detail: e.to_string(),
                    });
                    None
                }
            }
        } else {
            None
        };

        Ok(PartitionedSilcIndex {
            network,
            partition,
            shards,
            shard_bytes,
            tier,
            frontier_bytes,
            timings: None,
            warnings,
        })
    }

    /// The global network.
    pub fn network(&self) -> &Arc<SpatialNetwork> {
        &self.network
    }

    /// The partition (shard assignment, id maps, cut edges).
    pub fn partition(&self) -> &NetworkPartition {
        &self.partition
    }

    /// The partition, shareable.
    pub fn partition_arc(&self) -> &Arc<NetworkPartition> {
        &self.partition
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The disk index of shard `s`, over the shard's local vertex ids.
    pub fn shard_index(&self, s: usize) -> &Arc<DiskSilcIndex> {
        &self.shards[s]
    }

    /// On-disk bytes of each shard's index file.
    pub fn shard_bytes(&self) -> &[u64] {
        &self.shard_bytes
    }

    /// Total on-disk bytes across all shard files (tier excluded; see
    /// [`Self::frontier_bytes`]).
    pub fn total_bytes(&self) -> u64 {
        self.shard_bytes.iter().sum()
    }

    /// The frontier-distance tier, when the directory has a valid one.
    /// `None` means the router must fall back to interval-based
    /// cross-shard answers.
    pub fn frontier_tier(&self) -> Option<&Arc<FrontierTier>> {
        self.tier.as_ref()
    }

    /// On-disk bytes of the frontier-tier file (`0` when absent).
    pub fn frontier_bytes(&self) -> u64 {
        self.frontier_bytes
    }

    /// Build-phase wall-clock split; `None` on a re-opened directory.
    pub fn build_timings(&self) -> Option<BuildTimings> {
        self.timings
    }

    /// Non-fatal degradations recorded while opening the directory —
    /// components that existed but failed validation and were dropped
    /// (e.g. [`OpenWarning::DegradedOpen`] for a corrupt frontier tier).
    /// Empty on a clean open and on a fresh build. A serving front-end
    /// should surface these (e.g. in a status frame): they explain why
    /// cross-shard answers stop certifying `complete` without any
    /// per-query error ever firing.
    pub fn open_warnings(&self) -> &[OpenWarning] {
        &self.warnings
    }

    /// Page-pool I/O counters summed over all shards and the frontier tier.
    pub fn io_stats(&self) -> silc_storage::IoStats {
        let mut total = silc_storage::IoStats::default();
        let tier_stats = self.tier.as_ref().map(|t| t.io_stats());
        for s in self.shards.iter().map(|shard| shard.io_stats()).chain(tier_stats) {
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.bytes_read += s.bytes_read;
            total.read_nanos += s.read_nanos;
            total.retries += s.retries;
            total.faults_seen += s.faults_seen;
            total.prefetched += s.prefetched;
            total.prefetch_hits += s.prefetch_hits;
        }
        total
    }

    /// Zeroes the I/O counters of every shard and the frontier tier.
    pub fn reset_io_stats(&self) {
        for shard in &self.shards {
            shard.reset_io_stats();
        }
        if let Some(t) = &self.tier {
            t.reset_io_stats();
        }
    }

    /// Drops every shard's cached pages and decoded entries, and the
    /// tier's cached rows (cold start).
    pub fn clear_caches(&self) {
        for shard in &self.shards {
            shard.clear_cache();
        }
        if let Some(t) = &self.tier {
            t.clear_cache();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::browser::DistanceBrowser;
    use silc_network::generate::{road_network, RoadConfig};
    use silc_network::{dijkstra, VertexId};

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("silc-partitioned-tests").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn small_cfg(shards: usize) -> PartitionedBuildConfig {
        PartitionedBuildConfig {
            partition: PartitionConfig { shards, ..Default::default() },
            grid_exponent: 9,
            threads: 1,
            cache_fraction: 0.5,
        }
    }

    #[test]
    fn build_open_and_within_shard_distances_are_exact() {
        let g =
            Arc::new(road_network(&RoadConfig { vertices: 220, seed: 61, ..Default::default() }));
        let dir = tmp_dir("roundtrip");
        let cfg = small_cfg(4);
        let idx = PartitionedSilcIndex::build_in_dir(Arc::clone(&g), &dir, &cfg).unwrap();
        assert_eq!(idx.shard_count(), 4);
        assert_eq!(idx.shard_bytes().len(), 4);
        assert!(idx.total_bytes() > 0);
        assert!(idx.shard_bytes().iter().all(|&b| b > 0 && b % 4096 == 0));
        assert!(idx.frontier_tier().is_some(), "a fresh build carries the frontier tier");
        assert!(idx.frontier_bytes() > 0 && idx.frontier_bytes() % 4096 == 0);
        let t = idx.build_timings().expect("fresh builds record timings");
        assert!(t.shards_s >= 0.0 && t.frontier_s >= 0.0);

        // Shard-local intervals must contain the shard-local true distance
        // (which upper-bounds nothing global — it is the induced-subgraph
        // distance, ≥ the global one).
        let p = idx.partition();
        for (s, shard) in p.shards().iter().enumerate().take(2) {
            let disk = idx.shard_index(s);
            let local_g = shard.network();
            let u = VertexId(0);
            for v in local_g.vertices().take(12) {
                let d = dijkstra::distance(local_g, u, v).expect("shard is strongly connected");
                let iv = disk.interval(u, v);
                assert!(
                    iv.lo <= d + 1e-9 && d <= iv.hi + 1e-9,
                    "shard {s}: interval [{}, {}] must contain local distance {d}",
                    iv.lo,
                    iv.hi,
                );
                let dg = dijkstra::distance(&g, shard.to_global(u.0), shard.to_global(v.0))
                    .expect("global network is strongly connected");
                assert!(dg <= d + 1e-9, "global distance can only be shorter");
            }
        }

        // Re-open from disk: same shard count and bytes.
        let reopened = PartitionedSilcIndex::open_dir(Arc::clone(&g), &dir, &cfg).unwrap();
        assert_eq!(reopened.shard_count(), idx.shard_count());
        assert_eq!(reopened.shard_bytes(), idx.shard_bytes());
        assert!(reopened.frontier_tier().is_some(), "re-open finds the tier file");
        assert_eq!(reopened.frontier_bytes(), idx.frontier_bytes());
        assert!(reopened.build_timings().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_or_invalid_tier_degrades_open_to_no_tier() {
        let g =
            Arc::new(road_network(&RoadConfig { vertices: 140, seed: 17, ..Default::default() }));
        let dir = tmp_dir("tierless");
        let cfg = small_cfg(3);
        let built = PartitionedSilcIndex::build_in_dir(Arc::clone(&g), &dir, &cfg).unwrap();
        assert!(built.open_warnings().is_empty(), "a fresh build must not warn");
        drop(built);

        // Deleted tier file: the directory still opens, tier-free, and the
        // absence is *not* a degradation — the tier never existed.
        let tier_path = dir.join(crate::frontier::FILE_NAME);
        std::fs::remove_file(&tier_path).unwrap();
        let opened = PartitionedSilcIndex::open_dir(Arc::clone(&g), &dir, &cfg).unwrap();
        assert!(opened.frontier_tier().is_none());
        assert_eq!(opened.frontier_bytes(), 0);
        assert!(opened.open_warnings().is_empty(), "missing tier is not a degraded open");

        // Garbage tier file: validation fails, open degrades the same way —
        // but now the drop is recorded as a DegradedOpen warning.
        std::fs::write(&tier_path, vec![0u8; 8192]).unwrap();
        let opened = PartitionedSilcIndex::open_dir(Arc::clone(&g), &dir, &cfg).unwrap();
        assert!(opened.frontier_tier().is_none());
        assert_eq!(opened.open_warnings().len(), 1);
        match &opened.open_warnings()[0] {
            OpenWarning::DegradedOpen { component, detail } => {
                assert_eq!(component, "frontier tier");
                assert!(!detail.is_empty());
            }
        }
        let text = opened.open_warnings()[0].to_string();
        assert!(text.contains("degraded open"), "display form: {text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn io_stats_aggregate_and_reset() {
        let g =
            Arc::new(road_network(&RoadConfig { vertices: 120, seed: 9, ..Default::default() }));
        let dir = tmp_dir("stats");
        let idx = PartitionedSilcIndex::build_in_dir(Arc::clone(&g), &dir, &small_cfg(3)).unwrap();
        idx.clear_caches();
        idx.reset_io_stats();
        let s0 = idx.shard_index(0);
        let _ = s0.interval(VertexId(0), VertexId(1));
        assert!(idx.io_stats().requests() > 0, "a cold interval lookup must touch pages");
        idx.reset_io_stats();
        assert_eq!(idx.io_stats(), silc_storage::IoStats::default());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_dir_with_missing_shard_fails() {
        let g =
            Arc::new(road_network(&RoadConfig { vertices: 100, seed: 4, ..Default::default() }));
        let dir = tmp_dir("missing");
        let cfg = small_cfg(2);
        let _ = PartitionedSilcIndex::build_in_dir(Arc::clone(&g), &dir, &cfg).unwrap();
        std::fs::remove_file(dir.join(shard_file(1))).unwrap();
        match PartitionedSilcIndex::open_dir(g, &dir, &cfg) {
            Err(PartitionedBuildError::Shard { shard: 1, .. }) => {}
            other => panic!("expected Shard error, got {:?}", other.err().map(|e| e.to_string())),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_network_is_rejected() {
        let g = Arc::new(silc_network::NetworkBuilder::new().build());
        let dir = tmp_dir("empty");
        assert!(matches!(
            PartitionedSilcIndex::build_in_dir(g, &dir, &small_cfg(2)),
            Err(PartitionedBuildError::Partition(PartitionError::Empty))
        ));
    }
}
