//! The shortest-path quadtree: a disjoint Morton-block decomposition of a
//! shortest-path map.
//!
//! A region of the grid becomes a leaf block as soon as every vertex inside
//! shares the same first-hop color; empty regions are never materialized
//! (paper p.13–15: this is why the structure is `O(perimeter)` per source,
//! "dimension reducing", unlike MX/region quadtrees). Each block also keeps
//! `[λ−, λ+]`, the extremes of `network distance / Euclidean distance` over
//! its vertices, from which `DISTANCE_INTERVAL(u, v) = [λ−·dE, λ+·dE]` is
//! computed in O(1) after an `O(log n)` block lookup.

use crate::error::BuildError;
use crate::interval::DistInterval;
use crate::spmap::ShortestPathMap;
pub use crate::spmap::COLOR_SOURCE;
use serde::{Deserialize, Serialize};
use silc_geom::Point;
use silc_morton::{MortonBlock, MortonCode};
use silc_network::VertexId;

/// One Morton block of a shortest-path quadtree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockEntry {
    /// The region of the grid this entry covers.
    pub block: MortonBlock,
    /// First-hop color: the slot index into the source's sorted adjacency
    /// list, or [`COLOR_SOURCE`] for the block holding the source itself.
    pub color: u16,
    /// Minimum of `d_network / d_euclidean` over the block's vertices.
    pub lambda_lo: f64,
    /// Maximum of `d_network / d_euclidean` over the block's vertices.
    pub lambda_hi: f64,
}

impl BlockEntry {
    /// The distance interval for a destination inside this block at
    /// Euclidean distance `euclid` from the source.
    #[inline]
    pub fn interval(&self, euclid: f64) -> DistInterval {
        DistInterval::new(self.lambda_lo * euclid, self.lambda_hi * euclid)
    }
}

/// An inclusive rectangle of grid cells `[x0..=x1] × [y0..=y1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellRect {
    pub x0: u32,
    pub y0: u32,
    pub x1: u32,
    pub y1: u32,
}

impl CellRect {
    /// Creates a cell rectangle; coordinates are clamped to `x0<=x1`, `y0<=y1`
    /// by the caller.
    pub fn new(x0: u32, y0: u32, x1: u32, y1: u32) -> Self {
        debug_assert!(x0 <= x1 && y0 <= y1, "inverted cell rect");
        CellRect { x0, y0, x1, y1 }
    }

    /// Does `block` share at least one cell with the rectangle?
    #[inline]
    pub fn intersects_block(&self, block: &MortonBlock) -> bool {
        let o = block.origin();
        let s = block.side();
        o.x <= self.x1 && o.x + s > self.x0 && o.y <= self.y1 && o.y + s > self.y0
    }

    /// Does the rectangle contain the single cell `(x, y)`?
    #[inline]
    pub fn contains_cell(&self, x: u32, y: u32) -> bool {
        x >= self.x0 && x <= self.x1 && y >= self.y0 && y <= self.y1
    }
}

/// The shortest-path quadtree of one source vertex, stored as a sorted flat
/// list of Morton blocks.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SpQuadtree {
    entries: Vec<BlockEntry>,
    q: u32,
}

/// One source's shortest-path map in *Morton order*: entry `i` of every
/// slice describes the vertex in the `i`-th grid cell (ascending cell
/// code). The index builder scatters straight into this layout during the
/// SSSP settle callback, so the decomposition below runs on contiguous
/// memory with no per-vertex gathers.
pub struct MortonMap<'a> {
    /// The source vertex.
    pub source: VertexId,
    /// World position of the source.
    pub src_pos: Point,
    /// First-hop colors in code order ([`COLOR_SOURCE`] at the source).
    pub colors: &'a [u16],
    /// Network distances in code order.
    pub dist: &'a [f64],
    /// The sorted cell codes themselves.
    pub codes: &'a [u64],
    /// Vertex ids in code order (error reporting only).
    pub verts: &'a [u32],
    /// World positions in code order.
    pub positions: &'a [Point],
}

/// Reusable decomposition state: the traversal stack, the entry output
/// buffer (cloned into each finished tree at exact size), and the
/// uniform-run index. One scratch per worker makes quadtree construction
/// allocation-free across sources; for a single build, [`SpQuadtree::build`]
/// creates a throwaway one.
#[derive(Debug, Default)]
pub struct TreeScratch {
    stack: Vec<(MortonBlock, usize, usize)>,
    entries: Vec<BlockEntry>,
    /// `run_end[i]` = end (exclusive) of the maximal same-color run
    /// starting at code rank `i` — turns the per-node uniformity scan into
    /// an O(1) lookup (`run_end[lo] >= hi`).
    run_end: Vec<u32>,
}

impl TreeScratch {
    /// Materializes the most recent decomposition as an owned quadtree —
    /// one exact-size copy of the entry buffer.
    pub fn to_quadtree(&self, q: u32) -> SpQuadtree {
        SpQuadtree { entries: self.entries.clone(), q }
    }
}

impl SpQuadtree {
    /// Builds the quadtree for `map`.
    ///
    /// * `sorted` — all `(cell code, vertex)` pairs sorted by code (shared
    ///   across every source, computed once by the index builder),
    /// * `positions[v]` — world positions,
    /// * `q` — grid resolution exponent.
    ///
    /// One-shot wrapper over [`SpQuadtree::build_with`]: permutes the map
    /// into Morton order and allocates a throwaway scratch. The index
    /// builder bypasses this and scatters into Morton order during the
    /// SSSP itself.
    pub fn build(
        map: &ShortestPathMap,
        sorted: &[(u64, u32)],
        positions: &[Point],
        q: u32,
    ) -> Result<Self, BuildError> {
        let codes: Vec<u64> = sorted.iter().map(|&(c, _)| c).collect();
        let verts: Vec<u32> = sorted.iter().map(|&(_, v)| v).collect();
        let colors: Vec<u16> = verts.iter().map(|&v| map.colors[v as usize]).collect();
        let dist: Vec<f64> = verts.iter().map(|&v| map.dist[v as usize]).collect();
        let pos: Vec<Point> = verts.iter().map(|&v| positions[v as usize]).collect();
        let morton = MortonMap {
            source: map.source,
            src_pos: positions[map.source.index()],
            colors: &colors,
            dist: &dist,
            codes: &codes,
            verts: &verts,
            positions: &pos,
        };
        Self::build_with(&mut TreeScratch::default(), &morton, q)
    }

    /// Builds the quadtree from a Morton-ordered map using reusable scratch
    /// buffers. The finished tree's entry vector is allocated at exact size
    /// (one copy out of the scratch); everything else is reused.
    pub fn build_with(
        scratch: &mut TreeScratch,
        map: &MortonMap<'_>,
        q: u32,
    ) -> Result<Self, BuildError> {
        Self::decompose_with(scratch, map, q)?;
        Ok(scratch.to_quadtree(q))
    }

    /// Runs the block decomposition into `scratch.entries` and returns the
    /// block count without materializing a tree — the streaming storage
    /// counter uses this to avoid any per-source allocation at all.
    pub fn decompose_with(
        scratch: &mut TreeScratch,
        map: &MortonMap<'_>,
        q: u32,
    ) -> Result<usize, BuildError> {
        let n = map.codes.len();
        debug_assert!(map.colors.len() == n && map.dist.len() == n && map.positions.len() == n);
        let source = map.source;
        let src_pos = map.src_pos;
        let colors = map.colors;

        // Uniform-run index, rebuilt right-to-left in O(n).
        if scratch.run_end.len() != n {
            scratch.run_end.resize(n, 0);
        }
        for i in (0..n).rev() {
            scratch.run_end[i] = if i + 1 < n && colors[i + 1] == colors[i] {
                scratch.run_end[i + 1]
            } else {
                (i + 1) as u32
            };
        }
        let run_end = &scratch.run_end[..];
        let entries = &mut scratch.entries;
        entries.clear();
        let stack = &mut scratch.stack;
        stack.clear();

        // Explicit stack to avoid recursion depth limits; children are pushed
        // in reverse so blocks are emitted in ascending Morton order.
        stack.push((MortonBlock::root(q), 0, n));
        while let Some((block, lo, hi)) = stack.pop() {
            if lo == hi {
                continue;
            }
            let first_color = colors[lo];
            if run_end[lo] as usize >= hi {
                if first_color == COLOR_SOURCE {
                    entries.push(BlockEntry {
                        block,
                        color: COLOR_SOURCE,
                        lambda_lo: 0.0,
                        lambda_hi: 0.0,
                    });
                    continue;
                }
                let mut l_lo = f64::INFINITY;
                let mut l_hi = 0.0f64;
                for i in lo..hi {
                    let e = src_pos.distance(&map.positions[i]);
                    if e <= 0.0 {
                        return Err(BuildError::CoincidentVertices(source, VertexId(map.verts[i])));
                    }
                    let ratio = map.dist[i] / e;
                    l_lo = l_lo.min(ratio);
                    l_hi = l_hi.max(ratio);
                }
                entries.push(BlockEntry {
                    block,
                    color: first_color,
                    lambda_lo: l_lo,
                    lambda_hi: l_hi,
                });
                continue;
            }
            debug_assert!(block.level() > 0, "mixed colors in a single cell: duplicate cells?");
            let children = block.children();
            // Partition [lo, hi) into the four children by binary search.
            let mut bounds = [lo; 5];
            bounds[4] = hi;
            for (i, child) in children.iter().enumerate().take(3) {
                let end = child.end();
                bounds[i + 1] = bounds[i] + map.codes[bounds[i]..hi].partition_point(|&c| c < end);
            }
            bounds[3] = bounds[3].max(bounds[2]);
            for i in (0..4).rev() {
                stack.push((children[i], bounds[i], bounds[i + 1]));
            }
        }
        // The stack emits SW/SE/NW/NE first-to-last, so entries are sorted.
        debug_assert!(entries.windows(2).all(|w| w[0].block.end() <= w[1].block.start()));
        Ok(entries.len())
    }

    /// Number of Morton blocks (the unit of the paper's storage-complexity
    /// plot, p.16).
    pub fn block_count(&self) -> usize {
        self.entries.len()
    }

    /// All blocks, in ascending Morton order.
    pub fn entries(&self) -> &[BlockEntry] {
        &self.entries
    }

    /// Grid resolution exponent.
    pub fn q(&self) -> u32 {
        self.q
    }

    /// The block containing `code`, if any vertex-bearing block covers it.
    pub fn lookup(&self, code: MortonCode) -> Option<&BlockEntry> {
        let idx = self.entries.partition_point(|e| e.block.end() <= code.0);
        self.entries.get(idx).filter(|e| e.block.contains_code(code))
    }

    /// The minimum `λ−` over all blocks intersecting `rect`, or `None` when
    /// no vertex-bearing block intersects it.
    ///
    /// This is the region lower bound of the paper's
    /// `DISTANCE_INTERVAL(object, region)` primitive: every vertex inside
    /// `rect` is covered by some intersecting block, so its network distance
    /// is at least `λ− · dE` for the returned λ−.
    pub fn min_lambda_in_rect(&self, rect: &CellRect) -> Option<f64> {
        let mut best: Option<f64> = None;
        self.min_lambda_walk(MortonBlock::root(self.q), rect, &mut best);
        best
    }

    fn min_lambda_walk(&self, block: MortonBlock, rect: &CellRect, best: &mut Option<f64>) {
        if !rect.intersects_block(&block) {
            return;
        }
        if let Some(b) = *best {
            if b == 0.0 {
                return; // cannot improve
            }
        }
        // First entry overlapping `block`.
        let idx = self.entries.partition_point(|e| e.block.end() <= block.start());
        let Some(e) = self.entries.get(idx) else { return };
        if e.block.start() >= block.end() {
            return; // no vertices in this region
        }
        if e.block.start() <= block.start() && e.block.end() >= block.end() {
            // A single entry covers the whole region.
            let lambda = if e.color == COLOR_SOURCE { 0.0 } else { e.lambda_lo };
            *best = Some(best.map_or(lambda, |b| b.min(lambda)));
            return;
        }
        debug_assert!(block.level() > 0);
        for child in block.children() {
            self.min_lambda_walk(child, rect, best);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silc_geom::{GridMapper, Rect};
    use silc_network::generate::{grid_network, GridConfig};
    use silc_network::SpatialNetwork;

    /// Shared fixture: network, grid layout, and one map+quadtree.
    fn fixture(
        source: u32,
    ) -> (SpatialNetwork, GridMapper, Vec<MortonCode>, ShortestPathMap, SpQuadtree) {
        let g = grid_network(&GridConfig { rows: 8, cols: 8, seed: 5, ..Default::default() });
        let q = 7;
        let mapper = GridMapper::new(*g.bounds(), q);
        let cells = mapper.assign_unique(g.positions());
        let codes: Vec<MortonCode> = cells.iter().map(|&c| MortonCode::encode(c)).collect();
        let mut sorted: Vec<(u64, u32)> =
            codes.iter().enumerate().map(|(v, c)| (c.0, v as u32)).collect();
        sorted.sort_unstable();
        let map = ShortestPathMap::compute(&g, VertexId(source)).unwrap();
        let tree = SpQuadtree::build(&map, &sorted, g.positions(), q).unwrap();
        (g, mapper, codes, map, tree)
    }

    #[test]
    fn blocks_are_sorted_and_disjoint() {
        let (_, _, _, _, tree) = fixture(10);
        let e = tree.entries();
        assert!(!e.is_empty());
        for w in e.windows(2) {
            assert!(w[0].block.end() <= w[1].block.start(), "blocks overlap or unsorted");
        }
    }

    #[test]
    fn every_vertex_gets_its_color() {
        let (g, _, codes, map, tree) = fixture(10);
        for v in g.vertices() {
            let entry = tree.lookup(codes[v.index()]).expect("vertex cell must be covered");
            assert_eq!(entry.color, map.colors[v.index()], "wrong color for {v}");
        }
    }

    #[test]
    fn source_block_isolates_the_source() {
        let (_, _, codes, _, tree) = fixture(10);
        let e = *tree.lookup(codes[10]).unwrap();
        assert_eq!(e.color, COLOR_SOURCE);
        assert_eq!(e.lambda_lo, 0.0);
        assert_eq!(e.lambda_hi, 0.0);
        // The source's block may cover surrounding *empty* cells, but never
        // another vertex's cell.
        for (v, code) in codes.iter().enumerate() {
            if v != 10 {
                assert!(!e.block.contains_code(*code), "vertex {v} inside the source block");
            }
        }
    }

    #[test]
    fn lambda_interval_contains_true_distance() {
        let (g, _, codes, map, tree) = fixture(27);
        let src = VertexId(27);
        for v in g.vertices() {
            if v == src {
                continue;
            }
            let e = tree.lookup(codes[v.index()]).unwrap();
            let interval = e.interval(g.euclidean(src, v));
            let d = map.dist[v.index()];
            assert!(
                interval.contains(d)
                    || (d - interval.lo).abs() < 1e-9
                    || (d - interval.hi).abs() < 1e-9,
                "interval {interval} misses true distance {d} for {v}"
            );
        }
    }

    #[test]
    fn fewer_blocks_than_vertices_times_constant() {
        // Path coherence: the quadtree has far fewer blocks than cells.
        let (g, _, _, _, tree) = fixture(0);
        let cells = 1u64 << (2 * tree.q());
        assert!((tree.block_count() as u64) < cells / 4);
        assert!(tree.block_count() >= g.out_degree(VertexId(0)));
    }

    #[test]
    fn lookup_outside_any_block_is_none_or_block() {
        let (_, mapper, _, _, tree) = fixture(0);
        // The grid corner far from all jittered vertices may be uncovered;
        // whatever comes back must actually contain the probe.
        let probe = MortonCode::encode(
            mapper.to_grid(&Point::new(mapper.bounds().max_x, mapper.bounds().max_y)),
        );
        if let Some(e) = tree.lookup(probe) {
            assert!(e.block.contains_code(probe));
        }
    }

    #[test]
    fn min_lambda_in_rect_is_valid_lower_bound() {
        let (g, mapper, _, map, tree) = fixture(33);
        let src = VertexId(33);
        // A rect over the north-east quarter of the world.
        let b = g.bounds();
        let world =
            Rect::new((b.min_x + b.max_x) / 2.0, (b.min_y + b.max_y) / 2.0, b.max_x, b.max_y);
        let lo = mapper.to_grid(&Point::new(world.min_x, world.min_y));
        let hi = mapper.to_grid(&Point::new(world.max_x, world.max_y));
        let rect = CellRect::new(lo.x, lo.y, hi.x, hi.y);
        let lambda = tree.min_lambda_in_rect(&rect).expect("quarter must contain vertices");
        for v in g.vertices() {
            if v == src {
                continue;
            }
            let cell = mapper.to_grid(&g.position(v));
            if rect.contains_cell(cell.x, cell.y) {
                let d = map.dist[v.index()];
                let e = g.euclidean(src, v);
                assert!(
                    d >= lambda * e - 1e-9,
                    "regional λ={lambda} invalid for {v}: d={d}, dE={e}"
                );
            }
        }
    }

    #[test]
    fn min_lambda_empty_region_is_none() {
        let (_, _, _, _, tree) = fixture(0);
        // A 1-cell rect in a far corner of the (mostly empty) fine grid.
        let rect = CellRect::new(0, (1 << 7) - 1, 0, (1 << 7) - 1);
        // Either no block covers it (None) or a block does; both acceptable,
        // but when None the caller falls back to the global ratio.
        let _ = tree.min_lambda_in_rect(&rect);
    }

    #[test]
    fn cell_rect_block_intersection() {
        let rect = CellRect::new(2, 2, 5, 5);
        // Level-1 block at origin (0,0): cells 0..=1 — disjoint.
        let b00 = MortonBlock::new(MortonCode::encode(silc_geom::GridCoord::new(0, 0)), 1);
        assert!(!rect.intersects_block(&b00));
        // Level-1 block at (4,4): cells 4..=5 — inside.
        let b44 = MortonBlock::new(MortonCode::encode(silc_geom::GridCoord::new(4, 4)), 1);
        assert!(rect.intersects_block(&b44));
        // Level-2 block at (4,0): x 4..=7, y 0..=3 — overlaps corner.
        let b40 = MortonBlock::new(MortonCode::encode(silc_geom::GridCoord::new(4, 0)), 2);
        assert!(rect.intersects_block(&b40));
    }

    use silc_geom::Point;
}
