//! Network-distance intervals.
//!
//! SILC answers "how far is it?" with an interval `[δ−, δ+]` guaranteed to
//! contain the true network distance, refining it only while the query at
//! hand cannot yet be answered (paper §5, "progressive refinement"). This
//! module is the small algebra those queries are written in.

use serde::{Deserialize, Serialize};

/// A closed interval `[lo, hi]` known to contain a network distance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistInterval {
    /// Lower bound `δ−`.
    pub lo: f64,
    /// Upper bound `δ+`.
    pub hi: f64,
}

impl DistInterval {
    /// Creates an interval.
    ///
    /// # Panics
    /// Panics (debug builds) when `lo > hi` or `lo` is negative/NaN.
    #[inline]
    pub fn new(lo: f64, hi: f64) -> Self {
        debug_assert!(lo >= 0.0, "distance lower bound must be non-negative, got {lo}");
        debug_assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
        DistInterval { lo, hi }
    }

    /// The degenerate interval of an exactly known distance.
    #[inline]
    pub fn exact(d: f64) -> Self {
        Self::new(d, d)
    }

    /// `[0, ∞)` — no information.
    #[inline]
    pub fn unknown() -> Self {
        DistInterval { lo: 0.0, hi: f64::INFINITY }
    }

    /// Is the distance known exactly?
    #[inline]
    pub fn is_exact(&self) -> bool {
        self.lo == self.hi
    }

    /// Width `δ+ − δ−` (∞ for unbounded intervals).
    #[inline]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Translates the interval by an exactly known prefix distance `d`.
    #[inline]
    pub fn offset(&self, d: f64) -> Self {
        DistInterval { lo: self.lo + d, hi: self.hi + d }
    }

    /// Do the two intervals overlap? Two objects whose intervals overlap
    /// cannot be ordered by distance yet — the paper calls this a
    /// *collision* (p.23) and answers it with refinement.
    #[inline]
    pub fn collides(&self, other: &DistInterval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Is every distance in `self` strictly below every distance in `other`?
    #[inline]
    pub fn strictly_before(&self, other: &DistInterval) -> bool {
        self.hi < other.lo
    }

    /// The intersection, if any (used when combining independent bounds on
    /// the same distance).
    pub fn intersect(&self, other: &DistInterval) -> Option<DistInterval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(DistInterval { lo, hi })
        } else {
            None
        }
    }

    /// The smallest interval containing both.
    pub fn hull(&self, other: &DistInterval) -> DistInterval {
        DistInterval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Does the interval contain `d`?
    #[inline]
    pub fn contains(&self, d: f64) -> bool {
        d >= self.lo && d <= self.hi
    }
}

impl std::fmt::Display for DistInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:.4}, {:.4}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_interval() {
        let i = DistInterval::exact(5.0);
        assert!(i.is_exact());
        assert_eq!(i.width(), 0.0);
        assert!(i.contains(5.0));
        assert!(!i.contains(5.1));
    }

    #[test]
    fn unknown_contains_everything() {
        let u = DistInterval::unknown();
        assert!(!u.is_exact());
        assert!(u.contains(0.0));
        assert!(u.contains(1e300));
    }

    #[test]
    fn collision_semantics() {
        let a = DistInterval::new(1.0, 3.0);
        let b = DistInterval::new(2.0, 5.0);
        let c = DistInterval::new(4.0, 6.0);
        assert!(a.collides(&b));
        assert!(b.collides(&c));
        assert!(!a.collides(&c));
        assert!(a.strictly_before(&c));
        assert!(!a.strictly_before(&b));
        // Touching endpoints collide (distance could be equal).
        let d = DistInterval::new(3.0, 4.0);
        assert!(a.collides(&d));
        assert!(!a.strictly_before(&d));
    }

    #[test]
    fn offset_shifts_both_ends() {
        let i = DistInterval::new(1.0, 2.0).offset(10.0);
        assert_eq!(i, DistInterval::new(11.0, 12.0));
    }

    #[test]
    fn intersect_and_hull() {
        let a = DistInterval::new(1.0, 4.0);
        let b = DistInterval::new(3.0, 6.0);
        assert_eq!(a.intersect(&b), Some(DistInterval::new(3.0, 4.0)));
        assert_eq!(a.hull(&b), DistInterval::new(1.0, 6.0));
        let c = DistInterval::new(5.0, 7.0);
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(DistInterval::new(1.0, 2.5).to_string(), "[1.0000, 2.5000]");
    }

    proptest! {
        #[test]
        fn collides_is_symmetric(a in 0f64..10.0, b in 0f64..10.0, c in 0f64..10.0, d in 0f64..10.0) {
            let x = DistInterval::new(a.min(b), a.max(b));
            let y = DistInterval::new(c.min(d), c.max(d));
            prop_assert_eq!(x.collides(&y), y.collides(&x));
            // Exactly one of: collide, x before y, y before x.
            let outcomes =
                x.collides(&y) as u8 + x.strictly_before(&y) as u8 + y.strictly_before(&x) as u8;
            prop_assert_eq!(outcomes, 1);
        }

        #[test]
        fn intersect_within_hull(a in 0f64..10.0, b in 0f64..10.0, c in 0f64..10.0, d in 0f64..10.0) {
            let x = DistInterval::new(a.min(b), a.max(b));
            let y = DistInterval::new(c.min(d), c.max(d));
            let h = x.hull(&y);
            prop_assert!(h.lo <= x.lo && h.hi >= x.hi);
            prop_assert!(h.lo <= y.lo && h.hi >= y.hi);
            if let Some(i) = x.intersect(&y) {
                prop_assert!(i.lo >= h.lo && i.hi <= h.hi);
                prop_assert!(x.contains(i.lo) && y.contains(i.lo));
            }
        }
    }
}
