//! The disk-resident SILC index.
//!
//! The paper's experiments (p.32, p.38) run the quadtrees from disk with an
//! LRU cache holding 5 % of the pages, and find that I/O time dominates
//! query time because every refinement may touch a different vertex's
//! quadtree. This module serializes an index into a real page file and
//! serves lookups through `silc_storage::BufferPool`, so those experiments
//! measure genuine page reads.
//!
//! ## File layout (format v3, magic `SILCIDX3`)
//!
//! ```text
//! header    magic "SILCIDX3", n, q, world bounds, global min ratio,
//!           entry-region offset, entry-region length, checksum-table offset
//! codes     n × u64   — per-vertex grid-cell Morton codes
//! directory n × (u64, u32) — per vertex: byte offset of its record span
//!           (relative to the entry region) + entry count
//! entries   variable-length records, all vertices concatenated; within a
//!           vertex the blocks are sorted by Morton base and disjoint, so
//!           each record stores (LEB128 varints unless noted):
//!           level | gap = base − previous block's end | color | λ− f32 | λ+ f32
//!           The first record's gap is its absolute base. A tiling quadtree
//!           has gap 0 almost everywhere, so the usual record is
//!           1 + 1 + 1 + 8 = 11 bytes against the fixed 19 of v2.
//! (page padding)
//! checksums one 64-bit digest (8-lane FNV-1a) per payload page — verified on every physical
//!           page read, so bit rot surfaces as a typed error naming the
//!           page instead of a silently wrong distance
//! ```
//!
//! λ bounds are byte-identical to v2's, so a v3 file decodes into exactly
//! the same [`BlockEntry`] values as the v2 encoding of the same index —
//! everything above the entry cache cannot tell the formats apart. Varint
//! decoding is canonical and fully validated (level ≤ q, aligned base,
//! block inside the grid, exact span consumption), so corrupt bytes that
//! slip past the page checksums still surface as a typed
//! [`QueryError::Corrupt`], never a panic or a silently wrong answer.
//!
//! Formats v1 (`SILCIDX1`, no checksum table) and v2 (`SILCIDX2`, fixed
//! 19-byte records) stay readable; [`DiskSilcIndex::format_version`]
//! reports which one a file is, and [`write_index_with_version`] can still
//! produce them.
//!
//! Header, codes and directory are small and held in memory (they are the
//! "directory" any disk index keeps pinned); only the entry region — the
//! `O(N√N)` part — goes through the buffer pool. λ bounds are narrowed to
//! `f32` with outward rounding, so disk intervals are never tighter than the
//! exact ones (correctness is preserved; bounds may be a hair looser).

use crate::browser::DistanceBrowser;
use crate::error::{BuildError, QueryError};
use crate::index::SilcIndex;
use crate::sp_quadtree::{BlockEntry, CellRect};
use bytes::{Buf, BufMut};
use silc_geom::{GridMapper, Rect};
use silc_morton::{MortonBlock, MortonCode};
use silc_network::{SpatialNetwork, VertexId};
use silc_storage::varint::{self, VarintReader};
use silc_storage::{
    BufferPool, ChecksumTable, FilePageStore, PageStore, PrefetchPolicy, RetryPolicy, TieredPool,
    PAGE_SIZE,
};
use std::io;
use std::path::Path;
use std::sync::Arc;

const MAGIC_V1: &[u8; 8] = b"SILCIDX1";
const MAGIC_V2: &[u8; 8] = b"SILCIDX2";
const MAGIC_V3: &[u8; 8] = b"SILCIDX3";
/// The format version [`write_index`] and [`encode_index`] produce.
pub const CURRENT_VERSION: u32 = 3;
/// Bytes per serialized block entry in the fixed-record formats (v1/v2);
/// v3 records are variable-length.
pub const ENTRY_BYTES: usize = 19;

/// Rounds toward −∞ when narrowing to `f32`.
fn f32_down(x: f64) -> f32 {
    let f = x as f32;
    if f as f64 > x {
        f.next_down()
    } else {
        f
    }
}

/// Rounds toward +∞ when narrowing to `f32`.
fn f32_up(x: f64) -> f32 {
    let f = x as f32;
    if (f as f64) < x {
        f.next_up()
    } else {
        f
    }
}

/// Appends one vertex's v3 record span: per entry, varint level, varint
/// gap from the previous block's end (the first entry's absolute base),
/// varint color, then the two λ `f32`s bit-identical to the v2 encoding.
fn encode_entries_v3(entries: &[BlockEntry], buf: &mut Vec<u8>) {
    let mut prev_end = 0u64;
    for e in entries {
        varint::encode_u64(e.block.level() as u64, buf);
        let base = e.block.start();
        debug_assert!(base >= prev_end, "blocks must be sorted and disjoint");
        varint::encode_u64(base - prev_end, buf);
        varint::encode_u64(e.color as u64, buf);
        buf.put_f32_le(f32_down(e.lambda_lo));
        buf.put_f32_le(f32_up(e.lambda_hi));
        prev_end = e.block.end();
    }
}

/// Decodes one vertex's v3 record span, validating every invariant the
/// encoder maintains: canonical varints, level ≤ `q`, aligned base, block
/// inside the `4^q`-cell grid, blocks sorted and disjoint (gaps are
/// non-negative by construction), and the span consumed exactly. Any
/// violation is an error — corrupt bytes can never produce a wrong entry
/// list or a panic.
fn decode_entries_v3(raw: &[u8], count: u32, q: u32) -> io::Result<Arc<[BlockEntry]>> {
    let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let grid_end = 1u64 << (2 * q); // q ≤ 16, validated at open
    let mut r = VarintReader::new(raw);
    let mut entries = Vec::with_capacity(count as usize);
    let mut prev_end = 0u64;
    for _ in 0..count {
        let level = r.u64()?;
        if level > q as u64 {
            return Err(invalid(format!("block level {level} exceeds grid exponent {q}")));
        }
        let size = 1u64 << (2 * level as u32);
        let gap = r.u64()?;
        let base = prev_end
            .checked_add(gap)
            .ok_or_else(|| invalid("block base overflows u64".to_string()))?;
        if base % size != 0 {
            return Err(invalid(format!("block base {base:#x} unaligned for level {level}")));
        }
        let end =
            base.checked_add(size).ok_or_else(|| invalid("block end overflows u64".to_string()))?;
        if end > grid_end {
            return Err(invalid(format!("block [{base:#x}, {end:#x}) extends past the grid")));
        }
        let color = r.u64()?;
        let color =
            u16::try_from(color).map_err(|_| invalid(format!("color {color} out of range")))?;
        let lambda_lo = (r.f32_le()? as f64).max(0.0);
        let lambda_hi = r.f32_le()? as f64;
        entries.push(BlockEntry {
            block: MortonBlock::new(MortonCode(base), level as u8),
            color,
            lambda_lo,
            lambda_hi,
        });
        prev_end = end;
    }
    if r.remaining() != 0 {
        return Err(invalid(format!("{} trailing bytes after {count} records", r.remaining())));
    }
    Ok(entries.into())
}

/// Serializes `index` in the given format version: 1 = fixed records, no
/// checksums; 2 = fixed records + per-page checksum table; 3 = delta+varint
/// records + checksum table.
fn encode_with_version(index: &SilcIndex, version: u32) -> Vec<u8> {
    assert!((1..=CURRENT_VERSION).contains(&version), "unknown SILC format version {version}");
    let g = index.network();
    let n = g.vertex_count();

    // The entry region and its directory. v1/v2 directories address fixed
    // 19-byte records by entry index; the v3 directory addresses each
    // vertex's variable-length span by byte offset.
    let mut entry_buf: Vec<u8> = Vec::new();
    let mut directory: Vec<(u64, u32)> = Vec::with_capacity(n);
    for v in g.vertices() {
        let count = index.tree(v).block_count() as u32;
        if version >= 3 {
            directory.push((entry_buf.len() as u64, count));
            encode_entries_v3(index.tree(v).entries(), &mut entry_buf);
        } else {
            directory.push(((entry_buf.len() / ENTRY_BYTES) as u64, count));
            for e in index.tree(v).entries() {
                entry_buf.put_u64_le(e.block.start());
                entry_buf.put_u8(e.block.level());
                entry_buf.put_u16_le(e.color);
                entry_buf.put_f32_le(f32_down(e.lambda_lo));
                entry_buf.put_f32_le(f32_up(e.lambda_hi));
            }
        }
    }

    // v2 added the checksum-table offset to the header; v3 adds the entry
    // region's byte length (variable-length records need an explicit end).
    let header_len = 8
        + 4
        + 4
        + 32
        + 8
        + 8
        + if version >= 3 { 8 } else { 0 }
        + if version >= 2 { 8 } else { 0 };
    let meta_len = header_len + n * 8 + n * 12;
    let entries_base = meta_len as u64;
    let payload_len = meta_len + entry_buf.len();
    // The checksum table starts on the page boundary after the payload.
    let cksum_base = payload_len.div_ceil(PAGE_SIZE) * PAGE_SIZE;

    let mut buf = Vec::with_capacity(payload_len);
    buf.put_slice(match version {
        1 => MAGIC_V1,
        2 => MAGIC_V2,
        _ => MAGIC_V3,
    });
    buf.put_u32_le(n as u32);
    buf.put_u32_le(index.mapper().q());
    let b = index.mapper().bounds();
    buf.put_f64_le(b.min_x);
    buf.put_f64_le(b.min_y);
    buf.put_f64_le(b.max_x);
    buf.put_f64_le(b.max_y);
    buf.put_f64_le(index.global_min_ratio());
    buf.put_u64_le(entries_base);
    if version >= 3 {
        buf.put_u64_le(entry_buf.len() as u64);
    }
    if version >= 2 {
        buf.put_u64_le(cksum_base as u64);
    }
    for v in g.vertices() {
        buf.put_u64_le(index.vertex_code(v).value());
    }
    for &(start, count) in &directory {
        buf.put_u64_le(start);
        buf.put_u32_le(count);
    }
    debug_assert_eq!(buf.len(), meta_len);
    buf.extend_from_slice(&entry_buf);
    if version >= 2 {
        // Digest the page-padded payload image, then append the table on
        // the next page boundary.
        let table = ChecksumTable::compute(&buf);
        buf.resize(cksum_base, 0);
        buf.extend_from_slice(&table.to_bytes());
    }
    buf
}

/// Serializes `index` into the current ([`CURRENT_VERSION`]) byte image.
pub fn encode_index(index: &SilcIndex) -> Vec<u8> {
    encode_with_version(index, CURRENT_VERSION)
}

/// Serializes `index` in an explicit format version — the writer knob
/// that keeps every older format producible for compatibility tests and
/// for the old-vs-new trade-off benchmark.
///
/// # Panics
/// Panics if `version` is not in `1..=`[`CURRENT_VERSION`].
pub fn encode_index_with_version(index: &SilcIndex, version: u32) -> Vec<u8> {
    encode_with_version(index, version)
}

/// Serializes `index` into a page file at `path` (format
/// [`CURRENT_VERSION`]). The write is crash-safe: a temp file in the
/// target directory, fsynced, then atomically renamed — a crash mid-write
/// never leaves a truncated index at `path`.
pub fn write_index<P: AsRef<Path>>(index: &SilcIndex, path: P) -> Result<(), BuildError> {
    write_index_with_version(index, path, CURRENT_VERSION)
}

/// [`write_index`] with an explicit format version (see
/// [`encode_index_with_version`]).
pub fn write_index_with_version<P: AsRef<Path>>(
    index: &SilcIndex,
    path: P,
    version: u32,
) -> Result<(), BuildError> {
    FilePageStore::create(path, &encode_with_version(index, version))?;
    Ok(())
}

/// Serializes `index` in the legacy v1 format (no checksum table) — kept
/// so the backward-compatibility path stays exercised by tests.
pub fn write_index_v1<P: AsRef<Path>>(index: &SilcIndex, path: P) -> Result<(), BuildError> {
    write_index_with_version(index, path, 1)
}

/// A SILC index served from a page file through an LRU buffer pool.
///
/// Cheaply shareable: wrap it in an [`Arc`] and query it from any number of
/// threads. All interior state (the page pool, the decoded-entries cache)
/// is sharded and internally synchronized.
pub struct DiskSilcIndex {
    network: Arc<SpatialNetwork>,
    mapper: GridMapper,
    codes: Vec<MortonCode>,
    /// Per vertex: where its records start (entry index for v1/v2, byte
    /// offset into the entry region for v3) and how many there are.
    directory: Vec<(u64, u32)>,
    entries_base: u64,
    /// Byte length of the entry region.
    entries_len: u64,
    min_ratio: f64,
    /// On-disk format version (1 = legacy, 2 = checksummed, 3 =
    /// compressed).
    version: u32,
    /// The two-tier read path: the page pool plus decoded entry lists per
    /// vertex, so repeated probes of the same vertex's quadtree (every
    /// refinement step, every block descent) do not re-deserialize its full
    /// block list from page bytes. The store is type-erased so a wrapper
    /// (fault injection, instrumentation) can be slotted in at open time.
    cached: TieredPool<Box<dyn PageStore>, Arc<[BlockEntry]>>,
}

/// Both index types must stay shareable across query threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SilcIndex>();
    assert_send_sync::<DiskSilcIndex>();
};

impl DiskSilcIndex {
    /// Opens an index file, pairing it with the network it was built for.
    ///
    /// `cache_fraction` sizes the buffer pool relative to the file's page
    /// count; the paper uses 0.05. The decoded-entries cache gets a default
    /// size — big enough that a query's working set (the query vertex plus
    /// the refinement frontier) stays decoded; see
    /// [`Self::open_with_entry_cache`] to pick one explicitly.
    pub fn open<P: AsRef<Path>>(
        path: P,
        network: Arc<SpatialNetwork>,
        cache_fraction: f64,
    ) -> Result<Self, BuildError> {
        let cache = silc_storage::default_decoded_capacity(network.vertex_count());
        Self::open_with_entry_cache(path, network, cache_fraction, cache)
    }

    /// Opens an index file with an explicit decoded-entries cache capacity
    /// (in vertices; minimum 1).
    pub fn open_with_entry_cache<P: AsRef<Path>>(
        path: P,
        network: Arc<SpatialNetwork>,
        cache_fraction: f64,
        entry_cache_capacity: usize,
    ) -> Result<Self, BuildError> {
        let store = FilePageStore::open(&path)?;
        Self::from_store(Box::new(store), network, cache_fraction, entry_cache_capacity)
    }

    /// Opens an index from an arbitrary page store — the seam that lets
    /// tests wrap the file in a fault injector, or serve an index from any
    /// other page source. Validates the format exactly like
    /// [`Self::open`]; v2 files additionally get their metadata pages
    /// checksum-verified here and their entry pages verified lazily in the
    /// buffer pool.
    pub fn from_store(
        store: Box<dyn PageStore>,
        network: Arc<SpatialNetwork>,
        cache_fraction: f64,
        entry_cache_capacity: usize,
    ) -> Result<Self, BuildError> {
        let corrupt = |msg: &str| BuildError::Corrupt(msg.to_string());
        let file_len = store.page_count() * PAGE_SIZE as u64;

        let base_header_len = 8 + 4 + 4 + 32 + 8 + 8;
        if file_len < base_header_len as u64 + 8 {
            return Err(corrupt("file too small for header"));
        }
        let magic_bytes = silc_storage::read_span(&store, 0, 8)?;
        // Infallible: read_span returned exactly the 8 bytes requested.
        let version = match <&[u8; 8]>::try_from(&magic_bytes[..]).unwrap() {
            m if m == MAGIC_V1 => 1,
            m if m == MAGIC_V2 => 2,
            m if m == MAGIC_V3 => 3,
            _ => return Err(corrupt("bad magic")),
        };
        let header_len =
            base_header_len + if version >= 3 { 8 } else { 0 } + if version >= 2 { 8 } else { 0 };

        let header = silc_storage::read_span(&store, 0, header_len)?;
        let mut h = &header[8..];
        let n = h.get_u32_le() as usize;
        if n != network.vertex_count() {
            return Err(corrupt("index vertex count does not match network"));
        }
        let q = h.get_u32_le();
        if !(1..=16).contains(&q) {
            return Err(corrupt("grid exponent out of range"));
        }
        let bounds = Rect::new(h.get_f64_le(), h.get_f64_le(), h.get_f64_le(), h.get_f64_le());
        let min_ratio = h.get_f64_le();
        let entries_base = h.get_u64_le();
        let entries_len_field = if version >= 3 { Some(h.get_u64_le()) } else { None };

        // v2: load the checksum table, then re-read the metadata region
        // verified against it. (The 72 header bytes parsed above get
        // re-verified as part of the metadata span.)
        let meta_len = header_len + n * 8 + n * 12;
        let checks = if version >= 2 {
            let cksum_base = h.get_u64_le();
            if cksum_base % PAGE_SIZE as u64 != 0 {
                return Err(corrupt("checksum table is not page-aligned"));
            }
            let payload_pages = (cksum_base / PAGE_SIZE as u64) as usize;
            let table_bytes = payload_pages * 8;
            if cksum_base + table_bytes as u64 > file_len {
                return Err(corrupt("checksum table extends past end of file"));
            }
            let raw = silc_storage::read_span(&store, cksum_base as usize, table_bytes)?;
            let table = ChecksumTable::from_bytes(&raw, payload_pages)
                .map_err(|e| BuildError::Corrupt(e.to_string()))?;
            if meta_len > cksum_base as usize {
                return Err(corrupt("metadata region overlaps checksum table"));
            }
            Some(Arc::new(table))
        } else {
            None
        };
        let meta = match &checks {
            Some(table) => silc_storage::checksum::read_span_verified(&store, 0, meta_len, table)
                .map_err(|e| BuildError::Corrupt(e.to_string()))?,
            None => silc_storage::read_span(&store, 0, meta_len)?,
        };
        let mut m = &meta[header_len..];
        let mut codes = Vec::with_capacity(n);
        for _ in 0..n {
            codes.push(MortonCode(m.get_u64_le()));
        }
        let mut directory = Vec::with_capacity(n);
        let mut total_entries = 0u64;
        let mut prev_start = 0u64;
        for i in 0..n {
            let start = m.get_u64_le();
            let count = m.get_u32_le();
            if version >= 3 {
                // Byte-offset directory: spans are contiguous, so each
                // vertex's span ends where the next one starts.
                if i == 0 && start != 0 {
                    return Err(corrupt("directory does not start at offset 0"));
                }
                if start < prev_start {
                    return Err(corrupt("directory offsets are not sorted"));
                }
                prev_start = start;
            } else if start != total_entries {
                return Err(corrupt("directory entries are not contiguous"));
            }
            total_entries += count as u64;
            directory.push((start, count));
        }
        let entries_len = match entries_len_field {
            Some(len) => {
                if prev_start > len {
                    return Err(corrupt("directory offset past entry region"));
                }
                len
            }
            None => total_entries * ENTRY_BYTES as u64,
        };
        let needed = entries_base + entries_len;
        let entry_limit = match &checks {
            Some(table) => (table.pages() * PAGE_SIZE) as u64,
            None => file_len,
        };
        if needed > entry_limit {
            return Err(corrupt("entry region extends past end of file"));
        }

        let mut cached = TieredPool::new(store, cache_fraction, entry_cache_capacity);
        if let Some(table) = checks {
            cached.set_checksums(table);
        }
        Ok(DiskSilcIndex {
            mapper: GridMapper::new(bounds, q),
            network,
            codes,
            directory,
            entries_base,
            entries_len,
            min_ratio,
            version,
            cached,
        })
    }

    /// The on-disk format version this index was opened from: 1 (legacy,
    /// no checksums), 2 (per-page checksum table) or 3 (compressed
    /// delta+varint records).
    pub fn format_version(&self) -> u32 {
        self.version
    }

    /// Total number of block entries across all vertices — with
    /// [`Self::entry_region_bytes`], what a size projection between
    /// formats needs.
    pub fn entry_count(&self) -> u64 {
        self.directory.iter().map(|&(_, count)| count as u64).sum()
    }

    /// Byte length of the (possibly compressed) entry region.
    pub fn entry_region_bytes(&self) -> u64 {
        self.entries_len
    }

    /// Sets how the buffer pool retries transient store faults. Configure
    /// before sharing the index across threads.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.cached.set_retry_policy(retry);
    }

    /// Sets the buffer pool's readahead hint for cold entry-region scans
    /// (see [`PrefetchPolicy`]). Configure before sharing the index across
    /// threads.
    pub fn set_prefetch_policy(&mut self, prefetch: PrefetchPolicy) {
        self.cached.set_prefetch_policy(prefetch);
    }

    /// Opts this open out of per-page checksum verification (`SILCIDX2`
    /// files verify on every physical page read by default; v1 files carry
    /// no checksums and are unaffected). For trusted media and for
    /// measuring the verification overhead — corruption then goes
    /// undetected. Configure before sharing the index across threads.
    pub fn disable_checksum_validation(&mut self) {
        self.cached.clear_checksums();
    }

    /// I/O counters of the buffer pool.
    pub fn io_stats(&self) -> silc_storage::IoStats {
        self.cached.io_stats()
    }

    /// Hit/miss counters of the decoded-entries cache.
    pub fn entry_cache_stats(&self) -> silc_storage::CacheStats {
        self.cached.cache_stats()
    }

    /// Zeroes the I/O counters (pool and decoded-entries cache).
    pub fn reset_io_stats(&self) {
        self.cached.reset_stats();
    }

    /// Drops all cached pages *and* decoded entries (cold start).
    pub fn clear_cache(&self) {
        self.cached.clear();
    }

    /// Number of pages in the index file.
    pub fn page_count(&self) -> u64 {
        self.cached.store().page_count()
    }

    /// Fetches the whole shortest-path quadtree of `u` — the paper's access
    /// pattern ("retrieve the shortest-path quadtree Qs", p.17). Served in
    /// three tiers: the decoded-entries cache (no page access, no decode),
    /// then the buffer pool (decode from cached page bytes), then the store.
    /// Per-vertex quadtrees average `O(√n)` entries, typically well under
    /// one page, so a cold load is one sequential page read.
    ///
    /// A store fault (after the pool's retries) or a checksum mismatch
    /// propagates; nothing is cached for `u`, so a later call re-attempts
    /// the read.
    fn try_load_entries(&self, u: VertexId) -> io::Result<Arc<[BlockEntry]>> {
        self.cached.try_get_or_decode(u.index() as u64, |pool| self.decode_entries(pool, u))
    }

    /// Decodes `u`'s entry list from its pages through the buffer pool.
    fn decode_entries(
        &self,
        pool: &BufferPool<Box<dyn PageStore>>,
        u: VertexId,
    ) -> io::Result<Arc<[BlockEntry]>> {
        let (start, count) = self.directory[u.index()];
        let (byte_lo, byte_hi) = if self.version >= 3 {
            let end = self.directory.get(u.index() + 1).map_or(self.entries_len, |d| d.0);
            (self.entries_base + start, self.entries_base + end)
        } else {
            let lo = self.entries_base + start * ENTRY_BYTES as u64;
            (lo, lo + count as u64 * ENTRY_BYTES as u64)
        };
        let mut raw = Vec::with_capacity((byte_hi.saturating_sub(byte_lo)) as usize);
        pool.read_range(byte_lo, byte_hi, &mut raw)?;
        if self.version >= 3 {
            // Any decode failure — truncated or malformed varint, invariant
            // violation — is structural corruption; normalize it to one
            // InvalidData error naming the vertex, which the query layer
            // lifts to a typed `Corrupt`.
            return decode_entries_v3(&raw, count, self.mapper.q()).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("vertex {}: {e}", u.index()))
            });
        }
        let mut r = &raw[..];
        let mut entries = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let base = r.get_u64_le();
            let level = r.get_u8();
            let color = r.get_u16_le();
            let lambda_lo = (r.get_f32_le() as f64).max(0.0);
            let lambda_hi = r.get_f32_le() as f64;
            entries.push(BlockEntry {
                block: MortonBlock::new(MortonCode(base), level),
                color,
                lambda_lo,
                lambda_hi,
            });
        }
        Ok(entries.into())
    }

    fn min_lambda_walk(
        entries: &[BlockEntry],
        block: MortonBlock,
        rect: &CellRect,
        best: &mut Option<f64>,
    ) {
        if !rect.intersects_block(&block) {
            return;
        }
        if matches!(*best, Some(b) if b == 0.0) {
            return;
        }
        let idx = entries.partition_point(|e| e.block.end() <= block.start());
        let Some(e) = entries.get(idx) else { return };
        if e.block.start() >= block.end() {
            return;
        }
        if e.block.start() <= block.start() && e.block.end() >= block.end() {
            let lambda =
                if e.color == crate::sp_quadtree::COLOR_SOURCE { 0.0 } else { e.lambda_lo };
            *best = Some(best.map_or(lambda, |b| b.min(lambda)));
            return;
        }
        for child in block.children() {
            Self::min_lambda_walk(entries, child, rect, best);
        }
    }
}

impl DistanceBrowser for DiskSilcIndex {
    fn network(&self) -> &SpatialNetwork {
        &self.network
    }

    fn mapper(&self) -> &GridMapper {
        &self.mapper
    }

    fn vertex_code(&self, v: VertexId) -> MortonCode {
        self.codes[v.index()]
    }

    /// # Panics
    /// Panics where [`DistanceBrowser::try_entry`] would error (I/O
    /// failure after retries, checksum mismatch) — the infallible API
    /// boundary for callers that treat a failed disk as fatal.
    fn entry(&self, u: VertexId, code: MortonCode) -> Option<BlockEntry> {
        self.try_entry(u, code).unwrap_or_else(|e| panic!("{e}"))
    }

    /// # Panics
    /// Panics where [`DistanceBrowser::try_min_lambda`] would error.
    fn min_lambda(&self, u: VertexId, rect: &CellRect) -> Option<f64> {
        self.try_min_lambda(u, rect).unwrap_or_else(|e| panic!("{e}"))
    }

    fn global_min_ratio(&self) -> f64 {
        self.min_ratio
    }

    fn try_entry(&self, u: VertexId, code: MortonCode) -> Result<Option<BlockEntry>, QueryError> {
        let entries = self.try_load_entries(u)?;
        let idx = entries.partition_point(|e| e.block.end() <= code.0);
        Ok(entries.get(idx).filter(|e| e.block.contains_code(code)).copied())
    }

    fn try_min_lambda(&self, u: VertexId, rect: &CellRect) -> Result<Option<f64>, QueryError> {
        let entries = self.try_load_entries(u)?;
        let mut best = None;
        Self::min_lambda_walk(&entries, MortonBlock::root(self.mapper.q()), rect, &mut best);
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::BuildConfig;
    use crate::path;
    use silc_network::dijkstra;
    use silc_network::generate::{grid_network, GridConfig};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("silc-disk-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn build_pair(name: &str) -> (SilcIndex, DiskSilcIndex) {
        let g = Arc::new(grid_network(&GridConfig {
            rows: 8,
            cols: 8,
            seed: 41,
            ..Default::default()
        }));
        let idx =
            SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 8, threads: 2 }).unwrap();
        let path = tmp(name);
        write_index(&idx, &path).unwrap();
        let disk = DiskSilcIndex::open(&path, g, 0.25).unwrap();
        (idx, disk)
    }

    #[test]
    fn disk_lookups_match_memory() {
        let (mem, disk) = build_pair("match.idx");
        let g = mem.network();
        for u in g.vertices() {
            for v in g.vertices() {
                if u == v {
                    continue;
                }
                assert_eq!(
                    mem.next_hop(u, v),
                    disk.next_hop(u, v),
                    "next hop differs for {u}->{v}"
                );
                let im = mem.interval(u, v);
                let id = disk.interval(u, v);
                // Disk λ are widened by f32 rounding: the disk interval must
                // contain the memory interval.
                assert!(id.lo <= im.lo + 1e-9 && id.hi >= im.hi - 1e-9, "{u}->{v}: {id} vs {im}");
            }
        }
    }

    #[test]
    fn disk_paths_are_optimal() {
        let (_, disk) = build_pair("paths.idx");
        let g = disk.network();
        for &(s, d) in &[(0u32, 63u32), (17, 44)] {
            let p = path::shortest_path(&disk, VertexId(s), VertexId(d)).unwrap();
            let truth = dijkstra::distance(g, VertexId(s), VertexId(d)).unwrap();
            assert!((p.distance - truth).abs() < 1e-6);
        }
        let stats = disk.io_stats();
        assert!(stats.requests() > 0, "disk queries must touch pages");
    }

    #[test]
    fn cache_stats_reflect_locality() {
        // A page cache big enough for the whole file, but a decoded-entries
        // cache of one vertex: the second identical query is served from
        // memory (no misses), and because the entry cache cannot hold the
        // query's working set, the pool itself sees the warm hits.
        let (mem, _) = build_pair("stats.idx");
        let file = tmp("stats.idx");
        let disk =
            DiskSilcIndex::open_with_entry_cache(&file, mem.network_arc().clone(), 1.0, 1).unwrap();
        let _ = path::shortest_path(&disk, VertexId(0), VertexId(63)).unwrap();
        let cold = disk.io_stats();
        assert!(cold.misses > 0);
        disk.reset_io_stats();
        let _ = path::shortest_path(&disk, VertexId(0), VertexId(63)).unwrap();
        let warm = disk.io_stats();
        assert_eq!(warm.misses, 0, "warm run must not touch the disk: {warm:?}");
        assert!(warm.hits > 0);
    }

    #[test]
    fn entry_cache_absorbs_repeated_lookups() {
        let (mem, _) = build_pair("entrycache.idx");
        let g = mem.network();
        let file = tmp("entrycache.idx");
        // An entry cache holding every vertex: the first full sweep decodes
        // each vertex once, the second sweep must not touch the pool.
        let disk = DiskSilcIndex::open_with_entry_cache(
            &file,
            mem.network_arc().clone(),
            0.25,
            g.vertex_count(),
        )
        .unwrap();
        for u in g.vertices() {
            for v in g.vertices() {
                let _ = disk.entry(u, disk.vertex_code(v));
            }
        }
        let after_first = disk.io_stats();
        let cache_first = disk.entry_cache_stats();
        assert_eq!(cache_first.misses, g.vertex_count() as u64, "one decode per vertex");
        for u in g.vertices() {
            for v in g.vertices() {
                let _ = disk.entry(u, disk.vertex_code(v));
            }
        }
        assert_eq!(
            disk.io_stats(),
            after_first,
            "warm entry lookups must not touch the page pool at all"
        );
        let cache = disk.entry_cache_stats();
        assert_eq!(cache.misses, cache_first.misses, "no further decodes");
        assert!(cache.hits > cache_first.hits);
        // clear_cache drops decoded entries too: the next lookup re-decodes.
        disk.clear_cache();
        let _ = disk.entry(VertexId(0), disk.vertex_code(VertexId(1)));
        assert_eq!(disk.entry_cache_stats().misses, cache.misses + 1);
        assert!(disk.io_stats().misses > after_first.misses, "cold start re-reads pages");
    }

    #[test]
    fn region_bounds_agree_with_memory_validity() {
        let (mem, disk) = build_pair("region.idx");
        let g = mem.network();
        let u = VertexId(9);
        let b = g.bounds();
        let world =
            Rect::new(b.min_x + b.width() * 0.5, b.min_y, b.max_x, b.max_y * 0.5 + b.min_y * 0.5);
        let bound = disk.region_lower_bound(u, &world);
        for v in g.vertices() {
            if world.contains(&g.position(v)) {
                let d = dijkstra::distance(g, u, v).unwrap();
                assert!(d >= bound - 1e-6, "disk region bound invalid");
            }
        }
    }

    #[test]
    fn wrong_network_rejected() {
        let (mem, _) = build_pair("wrongnet.idx");
        let path = tmp("wrongnet.idx");
        let other = Arc::new(grid_network(&GridConfig { rows: 3, cols: 3, ..Default::default() }));
        match DiskSilcIndex::open(&path, other, 0.2) {
            Err(BuildError::Corrupt(msg)) => assert!(msg.contains("vertex count")),
            other => panic!("expected Corrupt, got {:?}", other.map(|_| ())),
        }
        drop(mem);
    }

    #[test]
    fn truncated_file_rejected() {
        let (_, _) = build_pair("trunc-src.idx");
        let src = tmp("trunc-src.idx");
        let dst = tmp("trunc.idx");
        let data = std::fs::read(&src).unwrap();
        std::fs::write(&dst, &data[..PAGE_SIZE.min(data.len())]).unwrap();
        let g = Arc::new(grid_network(&GridConfig {
            rows: 8,
            cols: 8,
            seed: 41,
            ..Default::default()
        }));
        assert!(DiskSilcIndex::open(&dst, g, 0.2).is_err());
    }

    #[test]
    fn old_formats_stay_readable_and_all_answer_bit_identically() {
        let g = Arc::new(grid_network(&GridConfig {
            rows: 8,
            cols: 8,
            seed: 41,
            ..Default::default()
        }));
        let idx =
            SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 8, threads: 2 }).unwrap();
        let mut opened = Vec::new();
        for version in 1..=CURRENT_VERSION {
            let p = tmp(&format!("compat-v{version}.idx"));
            write_index_with_version(&idx, &p, version).unwrap();
            let d = DiskSilcIndex::open(&p, g.clone(), 0.25).unwrap();
            assert_eq!(d.format_version(), version);
            opened.push(d);
        }
        assert_eq!(opened[0].entry_count(), opened[2].entry_count());
        // Every format decodes into bit-identical entries — λ included.
        let reference = &opened[0];
        for d in &opened[1..] {
            for u in g.vertices() {
                for v in g.vertices() {
                    let code = reference.vertex_code(v);
                    assert_eq!(
                        reference.try_entry(u, code).unwrap(),
                        d.try_entry(u, code).unwrap(),
                        "v{} entry differs from v1 for {u}->{v}",
                        d.format_version()
                    );
                }
                assert_eq!(d.next_hop(VertexId(0), u), reference.next_hop(VertexId(0), u));
            }
        }
    }

    #[test]
    fn v3_entry_region_shrinks_by_at_least_thirty_percent() {
        let g = Arc::new(grid_network(&GridConfig {
            rows: 8,
            cols: 8,
            seed: 41,
            ..Default::default()
        }));
        let idx =
            SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 8, threads: 2 }).unwrap();
        let p2 = tmp("shrink-v2.idx");
        let p3 = tmp("shrink-v3.idx");
        write_index_with_version(&idx, &p2, 2).unwrap();
        write_index_with_version(&idx, &p3, 3).unwrap();
        let d2 = DiskSilcIndex::open(&p2, g.clone(), 0.25).unwrap();
        let d3 = DiskSilcIndex::open(&p3, g, 0.25).unwrap();
        let (v2_bytes, v3_bytes) = (d2.entry_region_bytes(), d3.entry_region_bytes());
        assert_eq!(v2_bytes, d2.entry_count() * ENTRY_BYTES as u64);
        assert!(
            (v3_bytes as f64) <= 0.7 * v2_bytes as f64,
            "v3 entry region {v3_bytes} B not ≤ 70% of v2's {v2_bytes} B"
        );
    }

    #[test]
    fn v3_span_decoder_round_trips_and_rejects_malformed_bytes() {
        let q = 8u32;
        let entries = [
            BlockEntry {
                block: MortonBlock::new(MortonCode(0), 2),
                color: 3,
                lambda_lo: 1.0,
                lambda_hi: 2.5,
            },
            BlockEntry {
                block: MortonBlock::new(MortonCode(16), 2),
                color: 700,
                lambda_lo: 1.25,
                lambda_hi: 4.0,
            },
            BlockEntry {
                block: MortonBlock::new(MortonCode(64), 3),
                color: 0,
                lambda_lo: 0.5,
                lambda_hi: 0.75,
            },
        ];
        let mut buf = Vec::new();
        encode_entries_v3(&entries, &mut buf);
        let back = decode_entries_v3(&buf, entries.len() as u32, q).unwrap();
        assert_eq!(&back[..], &entries[..], "round trip must be bit-identical");
        // Empty span, zero entries: fine.
        assert!(decode_entries_v3(&[], 0, q).unwrap().is_empty());

        let kind = |raw: &[u8], count: u32| decode_entries_v3(raw, count, q).unwrap_err();
        // Truncation anywhere inside the span is an error, never a panic.
        for cut in 0..buf.len() {
            let e = kind(&buf[..cut], entries.len() as u32);
            assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
        // Trailing bytes after the last record.
        let mut long = buf.clone();
        long.push(0);
        assert_eq!(
            kind(&long, entries.len() as u32).kind(),
            io::ErrorKind::InvalidData,
            "trailing bytes must be rejected"
        );
        // Over-long varint in the level field.
        assert_eq!(kind(&[0x80; 11], 1).kind(), io::ErrorKind::InvalidData);
        // Non-canonical varint (0 as two bytes).
        assert_eq!(kind(&[0x80, 0x00], 1).kind(), io::ErrorKind::InvalidData);
        // Level above the grid exponent.
        let mut bad = Vec::new();
        silc_storage::varint::encode_u64(q as u64 + 1, &mut bad);
        assert!(kind(&bad, 1).to_string().contains("exceeds grid exponent"));
        // Unaligned base: level 2 (16 cells) at base 4.
        let mut bad = Vec::new();
        for v in [2u64, 4, 0] {
            silc_storage::varint::encode_u64(v, &mut bad);
        }
        bad.extend_from_slice(&[0u8; 8]);
        assert!(kind(&bad, 1).to_string().contains("unaligned"));
        // Block past the grid: level q at a gap that lands outside 4^q.
        let mut bad = Vec::new();
        for v in [0u64, 1u64 << (2 * q), 0] {
            silc_storage::varint::encode_u64(v, &mut bad);
        }
        bad.extend_from_slice(&[0u8; 8]);
        assert!(kind(&bad, 1).to_string().contains("past the grid"));
        // Color out of u16 range.
        let mut bad = Vec::new();
        for v in [0u64, 0, 1 << 16] {
            silc_storage::varint::encode_u64(v, &mut bad);
        }
        bad.extend_from_slice(&[0u8; 8]);
        assert!(kind(&bad, 1).to_string().contains("color"));
        // A gap that overflows the base accumulator.
        let mut bad = Vec::new();
        encode_entries_v3(&entries[..1], &mut bad);
        let mut second = Vec::new();
        for v in [0u64, u64::MAX, 0] {
            silc_storage::varint::encode_u64(v, &mut second);
        }
        second.extend_from_slice(&[0u8; 8]);
        bad.extend_from_slice(&second);
        let e = kind(&bad, 2);
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn corrupt_v3_records_surface_as_typed_corruption_not_panics() {
        // Bytes that pass the page checksums but violate the record
        // structure (a rewritten file with a recomputed table) must fail
        // with a pageless typed Corrupt at query time.
        let (_, disk) = build_pair("v3-tamper-src.idx");
        assert_eq!(disk.format_version(), 3);
        let src = tmp("v3-tamper-src.idx");
        let mut data = std::fs::read(&src).unwrap();
        let entries_base = disk.entries_base as usize;
        // Stomp the first vertex's level varint with an over-long varint.
        data[entries_base] = 0x80;
        data[entries_base + 1] = 0x80;
        // Recompute the checksum table so corruption reaches the decoder.
        let cksum_base = u64::from_le_bytes(data[72..80].try_into().unwrap()) as usize;
        let table = ChecksumTable::compute(&data[..cksum_base]);
        data.truncate(cksum_base);
        data.extend_from_slice(&table.to_bytes());
        data.resize(data.len().div_ceil(PAGE_SIZE) * PAGE_SIZE, 0);
        let dst = tmp("v3-tamper.idx");
        std::fs::write(&dst, &data).unwrap();
        let g = Arc::new(grid_network(&GridConfig {
            rows: 8,
            cols: 8,
            seed: 41,
            ..Default::default()
        }));
        let bad = DiskSilcIndex::open(&dst, g, 0.25).unwrap();
        match bad.try_entry(VertexId(0), bad.vertex_code(VertexId(1))) {
            Err(QueryError::Corrupt { page: None, detail }) => {
                assert!(detail.contains("vertex 0"), "{detail}");
            }
            other => panic!("expected pageless Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn bit_flip_in_entry_region_is_a_typed_corrupt_error() {
        let (_, disk) = build_pair("bitflip-src.idx");
        let src = tmp("bitflip-src.idx");
        let dst = tmp("bitflip.idx");
        let mut data = std::fs::read(&src).unwrap();
        // Flip one bit in the first entry page (past the pinned metadata).
        let meta_pages = (disk.entries_base as usize).div_ceil(PAGE_SIZE);
        let victim = meta_pages.max(1); // an entry-region page
        data[victim * PAGE_SIZE + 100] ^= 0x10;
        std::fs::write(&dst, &data).unwrap();
        let g = Arc::new(grid_network(&GridConfig {
            rows: 8,
            cols: 8,
            seed: 41,
            ..Default::default()
        }));
        let bad = DiskSilcIndex::open(&dst, g.clone(), 0.25).unwrap();
        // Some vertex's entries live on the flipped page; scanning all of
        // them must surface exactly a typed Corrupt naming that page —
        // never a silently wrong answer.
        let mut hit = None;
        for u in g.vertices() {
            match bad.try_entry(u, bad.vertex_code(VertexId(0))) {
                Ok(_) => {}
                Err(QueryError::Corrupt { page, detail }) => {
                    assert_eq!(page, Some(victim as u64), "wrong page named: {detail}");
                    assert!(detail.contains("checksum mismatch"), "{detail}");
                    hit = Some(u);
                    break;
                }
                Err(e) => panic!("expected Corrupt, got {e}"),
            }
        }
        assert!(hit.is_some(), "no lookup touched the corrupted page");
        // The checksum counters saw the fault; nothing was retried.
        let stats = bad.io_stats();
        assert!(stats.faults_seen >= 1);
        assert_eq!(stats.retries, 0, "checksum mismatches must not be retried");
    }

    #[test]
    fn every_page_aligned_truncation_is_rejected_or_detected() {
        let (_, _) = build_pair("truncsweep-src.idx");
        let src = tmp("truncsweep-src.idx");
        let data = std::fs::read(&src).unwrap();
        let pages = data.len() / PAGE_SIZE;
        let g = Arc::new(grid_network(&GridConfig {
            rows: 8,
            cols: 8,
            seed: 41,
            ..Default::default()
        }));
        for keep in 0..pages {
            let dst = tmp("truncsweep.idx");
            std::fs::write(&dst, &data[..keep * PAGE_SIZE]).unwrap();
            assert!(
                DiskSilcIndex::open(&dst, g.clone(), 0.25).is_err(),
                "truncation to {keep}/{pages} pages must not open"
            );
        }
    }

    #[test]
    fn f32_rounding_is_outward() {
        for &x in &[0.1f64, 1.7, 1234.5678, 1e-9, 3.0] {
            assert!(f32_down(x) as f64 <= x);
            assert!(f32_up(x) as f64 >= x);
        }
        assert_eq!(f32_down(2.0) as f64, 2.0);
        assert_eq!(f32_up(2.0) as f64, 2.0);
    }
}
