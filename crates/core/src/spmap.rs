//! Shortest-path maps: the first-hop coloring of a source vertex.
//!
//! For a source `u`, assign every other vertex `v` the *color* of the first
//! edge on the shortest path `u → v` (paper §4.1, the "coloring algorithm").
//! Because shortest paths in planar spatial networks are spatially coherent,
//! same-colored vertices form contiguous regions — which is what makes the
//! quadtree in [`crate::sp_quadtree`] small.

use crate::error::BuildError;
use silc_network::dijkstra::{self, NO_HOP};
use silc_network::{SpatialNetwork, VertexId};

/// The color of the source vertex itself in its own map.
pub const COLOR_SOURCE: u16 = u16::MAX;

/// The shortest-path map of one source vertex: per-vertex colors and exact
/// network distances.
#[derive(Debug, Clone)]
pub struct ShortestPathMap {
    /// The source vertex.
    pub source: VertexId,
    /// `colors[v]` is the adjacency-slot index (into the source's sorted
    /// out-edge list) of the first edge of the shortest path source → v;
    /// [`COLOR_SOURCE`] for the source itself.
    pub colors: Vec<u16>,
    /// `dist[v]` is the exact network distance source → v.
    pub dist: Vec<f64>,
}

impl ShortestPathMap {
    /// Computes the map by one run of Dijkstra's algorithm.
    ///
    /// Fails with [`BuildError::Unreachable`] when the network is not
    /// strongly connected from `source`, and with
    /// [`BuildError::ZeroWeightEdge`] when a zero-weight edge would let path
    /// retrieval loop forever.
    pub fn compute(g: &SpatialNetwork, source: VertexId) -> Result<Self, BuildError> {
        let tree = dijkstra::full_sssp(g, source);
        let n = g.vertex_count();
        let mut colors = vec![0u16; n];
        let mut missing = 0usize;
        for (v, color) in colors.iter_mut().enumerate() {
            if v == source.index() {
                *color = COLOR_SOURCE;
                continue;
            }
            let hop = tree.first_hop[v];
            if hop == NO_HOP {
                missing += 1;
                continue;
            }
            debug_assert!(hop < COLOR_SOURCE as u32, "out-degree exceeds u16 colors");
            *color = hop as u16;
            if tree.dist[v] <= 0.0 {
                let (t, _) = g.out_edge(source, hop as usize);
                return Err(BuildError::ZeroWeightEdge(source, t));
            }
        }
        if missing > 0 {
            return Err(BuildError::Unreachable { source, missing });
        }
        Ok(ShortestPathMap { source, colors, dist: tree.dist })
    }

    /// Number of distinct colors actually used (≤ out-degree of the source).
    pub fn color_count(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        for (v, &c) in self.colors.iter().enumerate() {
            if v != self.source.index() {
                seen.insert(c);
            }
        }
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silc_geom::Point;
    use silc_network::generate::{grid_network, GridConfig};
    use silc_network::NetworkBuilder;

    #[test]
    fn colors_match_per_destination_dijkstra() {
        let g = grid_network(&GridConfig { rows: 6, cols: 6, seed: 21, ..Default::default() });
        let s = VertexId(14);
        let map = ShortestPathMap::compute(&g, s).unwrap();
        assert_eq!(map.colors[s.index()], COLOR_SOURCE);
        for v in g.vertices() {
            if v == s {
                continue;
            }
            // The colored first hop must begin a shortest path:
            // d(s,v) = w(s,t) + d(t,v).
            let (t, w) = g.out_edge(s, map.colors[v.index()] as usize);
            let d_tv = dijkstra::distance(&g, t, v).unwrap();
            let lhs = map.dist[v.index()];
            assert!(
                (lhs - (w + d_tv)).abs() < 1e-9,
                "first hop of {v} does not start a shortest path"
            );
        }
    }

    #[test]
    fn color_count_bounded_by_degree() {
        let g = grid_network(&GridConfig { rows: 5, cols: 5, seed: 3, ..Default::default() });
        for s in g.vertices() {
            let map = ShortestPathMap::compute(&g, s).unwrap();
            assert!(map.color_count() <= g.out_degree(s));
            assert!(map.color_count() >= 1);
        }
    }

    #[test]
    fn disconnected_network_fails() {
        let mut b = NetworkBuilder::new();
        let u = b.add_vertex(Point::new(0.0, 0.0));
        let v = b.add_vertex(Point::new(1.0, 0.0));
        let _w = b.add_vertex(Point::new(2.0, 0.0));
        b.add_edge_sym(u, v, 1.0);
        let g = b.build();
        match ShortestPathMap::compute(&g, u) {
            Err(BuildError::Unreachable { missing, .. }) => assert_eq!(missing, 1),
            other => panic!("expected Unreachable, got {other:?}"),
        }
    }

    #[test]
    fn zero_weight_edge_fails() {
        let mut b = NetworkBuilder::new();
        let u = b.add_vertex(Point::new(0.0, 0.0));
        let v = b.add_vertex(Point::new(1.0, 0.0));
        b.add_edge_sym(u, v, 0.0);
        let g = b.build();
        assert!(matches!(ShortestPathMap::compute(&g, u), Err(BuildError::ZeroWeightEdge(_, _))));
    }
}
