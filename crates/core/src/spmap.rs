//! Shortest-path maps: the first-hop coloring of a source vertex.
//!
//! For a source `u`, assign every other vertex `v` the *color* of the first
//! edge on the shortest path `u → v` (paper §4.1, the "coloring algorithm").
//! Because shortest paths in planar spatial networks are spatially coherent,
//! same-colored vertices form contiguous regions — which is what makes the
//! quadtree in [`crate::sp_quadtree`] small.

use crate::error::BuildError;
use silc_network::dijkstra::{self, NO_HOP};
use silc_network::{SpatialNetwork, SsspWorkspace, VertexId};

/// The color of the source vertex itself in its own map.
pub const COLOR_SOURCE: u16 = u16::MAX;

/// Reusable buffers for [`ShortestPathMap::compute_into`]: the per-vertex
/// colors and distances of one map, overwritten by each computation.
///
/// Hold one per worker (next to its [`SsspWorkspace`]) when computing maps
/// for many sources; nothing is allocated after the first use at a given
/// network size.
#[derive(Debug, Default)]
pub struct SpMapBuffers {
    colors: Vec<u16>,
    dist: Vec<f64>,
}

/// A borrowed shortest-path map: the same data as [`ShortestPathMap`],
/// viewing reusable buffers instead of owning vectors.
#[derive(Debug, Clone, Copy)]
pub struct SpMapRef<'a> {
    /// The source vertex.
    pub source: VertexId,
    /// Per-vertex first-hop colors ([`COLOR_SOURCE`] at the source).
    pub colors: &'a [u16],
    /// Per-vertex exact network distances.
    pub dist: &'a [f64],
}

/// The shortest-path map of one source vertex: per-vertex colors and exact
/// network distances.
#[derive(Debug, Clone)]
pub struct ShortestPathMap {
    /// The source vertex.
    pub source: VertexId,
    /// `colors[v]` is the adjacency-slot index (into the source's sorted
    /// out-edge list) of the first edge of the shortest path source → v;
    /// [`COLOR_SOURCE`] for the source itself.
    pub colors: Vec<u16>,
    /// `dist[v]` is the exact network distance source → v.
    pub dist: Vec<f64>,
}

impl ShortestPathMap {
    /// Computes the map by one run of Dijkstra's algorithm.
    ///
    /// Fails with [`BuildError::Unreachable`] when the network is not
    /// strongly connected from `source`, and with
    /// [`BuildError::ZeroWeightEdge`] when a zero-weight edge would let path
    /// retrieval loop forever.
    ///
    /// One-shot wrapper over [`ShortestPathMap::compute_into`]; repeated
    /// callers should hold a workspace and buffers instead.
    pub fn compute(g: &SpatialNetwork, source: VertexId) -> Result<Self, BuildError> {
        let mut ws = SsspWorkspace::new();
        let mut buf = SpMapBuffers::default();
        let map = Self::compute_into(g, source, &mut ws, &mut buf)?;
        Ok(ShortestPathMap { source, colors: map.colors.to_vec(), dist: map.dist.to_vec() })
    }

    /// Computes the map into reusable buffers: the SSSP borrows `ws`, the
    /// colors and distances are written into `buf`, and the returned view
    /// borrows `buf` — no per-source allocation happens at steady state.
    /// Results are identical to [`ShortestPathMap::compute`].
    pub fn compute_into<'b>(
        g: &SpatialNetwork,
        source: VertexId,
        ws: &mut SsspWorkspace,
        buf: &'b mut SpMapBuffers,
    ) -> Result<SpMapRef<'b>, BuildError> {
        let n = g.vertex_count();
        let run = dijkstra::full_sssp_into(g, source, ws);
        buf.colors.resize(n, 0);
        buf.dist.resize(n, 0.0);
        buf.dist.copy_from_slice(run.dist_slice());
        let mut missing = 0usize;
        for (v, color) in buf.colors.iter_mut().enumerate() {
            if v == source.index() {
                *color = COLOR_SOURCE;
                continue;
            }
            let hop = run.first_hop(VertexId(v as u32));
            if hop == NO_HOP {
                missing += 1;
                continue;
            }
            debug_assert!(hop < COLOR_SOURCE as u32, "out-degree exceeds u16 colors");
            *color = hop as u16;
            if buf.dist[v] <= 0.0 {
                let (t, _) = g.out_edge(source, hop as usize);
                return Err(BuildError::ZeroWeightEdge(source, t));
            }
        }
        if missing > 0 {
            return Err(BuildError::Unreachable { source, missing });
        }
        Ok(SpMapRef { source, colors: &buf.colors, dist: &buf.dist })
    }

    /// This map as a borrowed [`SpMapRef`].
    pub fn as_ref(&self) -> SpMapRef<'_> {
        SpMapRef { source: self.source, colors: &self.colors, dist: &self.dist }
    }

    /// Number of distinct colors actually used (≤ out-degree of the source).
    pub fn color_count(&self) -> usize {
        // Colors are adjacency-slot indices, so a small bitmap sized by the
        // largest slot seen replaces the old per-call `HashSet`.
        let si = self.source.index();
        let mut max_color = 0u16;
        let mut any = false;
        for (v, &c) in self.colors.iter().enumerate() {
            if v != si {
                max_color = max_color.max(c);
                any = true;
            }
        }
        if !any {
            return 0;
        }
        let mut seen = vec![0u64; max_color as usize / 64 + 1];
        for (v, &c) in self.colors.iter().enumerate() {
            if v != si {
                seen[(c / 64) as usize] |= 1u64 << (c % 64);
            }
        }
        seen.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silc_geom::Point;
    use silc_network::generate::{grid_network, GridConfig};
    use silc_network::NetworkBuilder;

    #[test]
    fn colors_match_per_destination_dijkstra() {
        let g = grid_network(&GridConfig { rows: 6, cols: 6, seed: 21, ..Default::default() });
        let s = VertexId(14);
        let map = ShortestPathMap::compute(&g, s).unwrap();
        assert_eq!(map.colors[s.index()], COLOR_SOURCE);
        for v in g.vertices() {
            if v == s {
                continue;
            }
            // The colored first hop must begin a shortest path:
            // d(s,v) = w(s,t) + d(t,v).
            let (t, w) = g.out_edge(s, map.colors[v.index()] as usize);
            let d_tv = dijkstra::distance(&g, t, v).unwrap();
            let lhs = map.dist[v.index()];
            assert!(
                (lhs - (w + d_tv)).abs() < 1e-9,
                "first hop of {v} does not start a shortest path"
            );
        }
    }

    #[test]
    fn color_count_bounded_by_degree() {
        let g = grid_network(&GridConfig { rows: 5, cols: 5, seed: 3, ..Default::default() });
        for s in g.vertices() {
            let map = ShortestPathMap::compute(&g, s).unwrap();
            assert!(map.color_count() <= g.out_degree(s));
            assert!(map.color_count() >= 1);
        }
    }

    #[test]
    fn compute_into_reuse_matches_one_shot() {
        let g = grid_network(&GridConfig { rows: 6, cols: 6, seed: 9, ..Default::default() });
        let mut ws = SsspWorkspace::new();
        let mut buf = SpMapBuffers::default();
        for s in [0u32, 17, 35, 17] {
            let s = VertexId(s);
            let owned = ShortestPathMap::compute(&g, s).unwrap();
            let view = ShortestPathMap::compute_into(&g, s, &mut ws, &mut buf).unwrap();
            assert_eq!(view.colors, &owned.colors[..]);
            let same = view.dist.iter().zip(&owned.dist).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "distances differ under buffer reuse for {s}");
        }
    }

    #[test]
    fn compute_into_reports_errors_like_compute() {
        let mut b = NetworkBuilder::new();
        let u = b.add_vertex(Point::new(0.0, 0.0));
        let v = b.add_vertex(Point::new(1.0, 0.0));
        let _iso = b.add_vertex(Point::new(2.0, 2.0));
        b.add_edge_sym(u, v, 1.0);
        let g = b.build();
        let mut ws = SsspWorkspace::new();
        let mut buf = SpMapBuffers::default();
        assert!(matches!(
            ShortestPathMap::compute_into(&g, u, &mut ws, &mut buf),
            Err(BuildError::Unreachable { missing: 1, .. })
        ));
    }

    #[test]
    fn color_count_matches_hashset_semantics() {
        let g = grid_network(&GridConfig { rows: 6, cols: 6, seed: 4, ..Default::default() });
        for s in g.vertices() {
            let map = ShortestPathMap::compute(&g, s).unwrap();
            let brute: std::collections::HashSet<u16> = map
                .colors
                .iter()
                .enumerate()
                .filter(|&(v, _)| v != s.index())
                .map(|(_, &c)| c)
                .collect();
            assert_eq!(map.color_count(), brute.len(), "bitmap disagrees with HashSet at {s}");
        }
    }

    #[test]
    fn disconnected_network_fails() {
        let mut b = NetworkBuilder::new();
        let u = b.add_vertex(Point::new(0.0, 0.0));
        let v = b.add_vertex(Point::new(1.0, 0.0));
        let _w = b.add_vertex(Point::new(2.0, 0.0));
        b.add_edge_sym(u, v, 1.0);
        let g = b.build();
        match ShortestPathMap::compute(&g, u) {
            Err(BuildError::Unreachable { missing, .. }) => assert_eq!(missing, 1),
            other => panic!("expected Unreachable, got {other:?}"),
        }
    }

    #[test]
    fn zero_weight_edge_fails() {
        let mut b = NetworkBuilder::new();
        let u = b.add_vertex(Point::new(0.0, 0.0));
        let v = b.add_vertex(Point::new(1.0, 0.0));
        b.add_edge_sym(u, v, 0.0);
        let g = b.build();
        assert!(matches!(ShortestPathMap::compute(&g, u), Err(BuildError::ZeroWeightEdge(_, _))));
    }
}
