//! The in-memory SILC index: shortest-path quadtrees for every vertex.
//!
//! Precomputation is embarrassingly parallel — one Dijkstra plus one
//! quadtree build per source, with no interaction between sources (the paper
//! points this out on p.27, "Easily Parallelizable: data parallelism").
//! Workers pull vertex ids from a shared atomic counter and stream finished
//! quadtrees back over a channel.

use crate::browser::DistanceBrowser;
use crate::error::BuildError;
use crate::sp_quadtree::{BlockEntry, CellRect, SpQuadtree};
use crate::spmap::ShortestPathMap;
use silc_geom::GridMapper;
use silc_morton::MortonCode;
use silc_network::{SpatialNetwork, VertexId};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Parameters of index construction.
#[derive(Debug, Clone)]
pub struct BuildConfig {
    /// Grid resolution exponent `q`: vertices are embedded in a `2^q × 2^q`
    /// grid. Must provide at least one cell per vertex; the default (12,
    /// ≈ 16.8 M cells) comfortably fits the networks this library targets.
    pub grid_exponent: u32,
    /// Worker threads for precomputation; `0` means all available cores.
    pub threads: usize,
}

impl Default for BuildConfig {
    fn default() -> Self {
        BuildConfig { grid_exponent: 12, threads: 0 }
    }
}

/// Size and cost statistics of a built index.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexStats {
    /// Number of source vertices (= number of quadtrees).
    pub vertices: usize,
    /// Total Morton blocks across all quadtrees — the `m` of the paper's
    /// storage plot (p.16, slope ≈ 1.5 in log-log).
    pub total_blocks: usize,
    /// Largest single quadtree.
    pub max_blocks: usize,
    /// Smallest single quadtree.
    pub min_blocks: usize,
    /// Wall-clock seconds spent building.
    pub build_seconds: f64,
}

/// The SILC index: one shortest-path quadtree per network vertex.
pub struct SilcIndex {
    network: Arc<SpatialNetwork>,
    mapper: GridMapper,
    codes: Vec<MortonCode>,
    trees: Vec<SpQuadtree>,
    min_ratio: f64,
    stats: IndexStats,
}

impl SilcIndex {
    /// Builds the index for `network`.
    ///
    /// Runs `n` Dijkstra computations (in parallel) and decomposes each
    /// shortest-path map into Morton blocks. Fails if the network is empty,
    /// not strongly connected, has coincident vertex positions, or zero
    /// weight edges.
    pub fn build(network: Arc<SpatialNetwork>, cfg: &BuildConfig) -> Result<Self, BuildError> {
        let start = Instant::now();
        let n = network.vertex_count();
        if n == 0 {
            return Err(BuildError::EmptyNetwork);
        }
        let layout = GridLayout::new(&network, cfg.grid_exponent);
        let trees = build_all_trees(&network, &layout, cfg.threads)?;

        let total_blocks: usize = trees.iter().map(SpQuadtree::block_count).sum();
        let max_blocks = trees.iter().map(SpQuadtree::block_count).max().unwrap_or(0);
        let min_blocks = trees.iter().map(SpQuadtree::block_count).min().unwrap_or(0);
        let min_ratio = network.min_weight_ratio();
        Ok(SilcIndex {
            mapper: layout.mapper,
            codes: layout.codes,
            trees,
            min_ratio,
            stats: IndexStats {
                vertices: n,
                total_blocks,
                max_blocks,
                min_blocks,
                build_seconds: start.elapsed().as_secs_f64(),
            },
            network,
        })
    }

    /// Size and build-cost statistics.
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }

    /// The shortest-path quadtree of vertex `u`.
    pub fn tree(&self, u: VertexId) -> &SpQuadtree {
        &self.trees[u.index()]
    }

    /// The shared network handle.
    pub fn network_arc(&self) -> &Arc<SpatialNetwork> {
        &self.network
    }

    /// Per-vertex grid-cell codes (indexed by vertex id).
    pub fn codes(&self) -> &[MortonCode] {
        &self.codes
    }
}

impl DistanceBrowser for SilcIndex {
    fn network(&self) -> &SpatialNetwork {
        &self.network
    }

    fn mapper(&self) -> &GridMapper {
        &self.mapper
    }

    fn vertex_code(&self, v: VertexId) -> MortonCode {
        self.codes[v.index()]
    }

    fn entry(&self, u: VertexId, code: MortonCode) -> Option<BlockEntry> {
        self.trees[u.index()].lookup(code).copied()
    }

    fn min_lambda(&self, u: VertexId, rect: &CellRect) -> Option<f64> {
        self.trees[u.index()].min_lambda_in_rect(rect)
    }

    fn global_min_ratio(&self) -> f64 {
        self.min_ratio
    }
}

/// The grid embedding shared by every source: unique cells, Morton codes,
/// and the code-sorted vertex list.
pub(crate) struct GridLayout {
    pub mapper: GridMapper,
    pub codes: Vec<MortonCode>,
    pub sorted: Vec<(u64, u32)>,
}

impl GridLayout {
    pub(crate) fn new(network: &SpatialNetwork, q: u32) -> Self {
        let mapper = GridMapper::new(*network.bounds(), q);
        let cells = mapper.assign_unique(network.positions());
        let codes: Vec<MortonCode> = cells.into_iter().map(MortonCode::encode).collect();
        let mut sorted: Vec<(u64, u32)> =
            codes.iter().enumerate().map(|(v, c)| (c.0, v as u32)).collect();
        sorted.sort_unstable();
        GridLayout { mapper, codes, sorted }
    }
}

/// Builds every vertex's quadtree, fanning work out to `threads` workers.
fn build_all_trees(
    network: &SpatialNetwork,
    layout: &GridLayout,
    threads: usize,
) -> Result<Vec<SpQuadtree>, BuildError> {
    let n = network.vertex_count();
    let workers = if threads == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    } else {
        threads
    }
    .min(n)
    .max(1);

    if workers == 1 {
        let mut trees = Vec::with_capacity(n);
        for v in 0..n as u32 {
            trees.push(build_one(network, layout, VertexId(v))?);
        }
        return Ok(trees);
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::unbounded::<(u32, Result<SpQuadtree, BuildError>)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let v = next.fetch_add(1, Ordering::Relaxed);
                if v >= n {
                    break;
                }
                let result = build_one(network, layout, VertexId(v as u32));
                let failed = result.is_err();
                if tx.send((v as u32, result)).is_err() || failed {
                    break; // collector hung up after a previous error
                }
            });
        }
        drop(tx);
        let mut trees: Vec<Option<SpQuadtree>> = (0..n).map(|_| None).collect();
        let mut received = 0usize;
        for (v, result) in rx {
            trees[v as usize] = Some(result?);
            received += 1;
            if received == n {
                break;
            }
        }
        Ok(trees.into_iter().map(|t| t.expect("all vertices built")).collect())
    })
}

/// Builds the quadtree of one source (used by both the parallel builder and
/// the streaming block counter).
pub(crate) fn build_one(
    network: &SpatialNetwork,
    layout: &GridLayout,
    source: VertexId,
) -> Result<SpQuadtree, BuildError> {
    let map = ShortestPathMap::compute(network, source)?;
    SpQuadtree::build(&map, &layout.sorted, network.positions(), layout.mapper.q())
}

/// Counts the total number of Morton blocks of the index for `network`
/// without keeping the quadtrees in memory.
///
/// This is the measurement behind the storage-scaling experiment (paper
/// p.16): it streams one source at a time (in parallel), so networks far too
/// large to hold a full index fit comfortably.
pub fn count_total_blocks(
    network: &SpatialNetwork,
    grid_exponent: u32,
    threads: usize,
) -> Result<usize, BuildError> {
    let n = network.vertex_count();
    if n == 0 {
        return Err(BuildError::EmptyNetwork);
    }
    let layout = GridLayout::new(network, grid_exponent);
    let workers = if threads == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    } else {
        threads
    }
    .min(n)
    .max(1);

    let next = AtomicUsize::new(0);
    let total = AtomicUsize::new(0);
    let error = parking_lot_free_error_slot();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let next = &next;
            let total = &total;
            let error = &error;
            let layout = &layout;
            scope.spawn(move || loop {
                let v = next.fetch_add(1, Ordering::Relaxed);
                if v >= n || error.lock().unwrap().is_some() {
                    break;
                }
                match build_one(network, layout, VertexId(v as u32)) {
                    Ok(tree) => {
                        total.fetch_add(tree.block_count(), Ordering::Relaxed);
                    }
                    Err(e) => {
                        *error.lock().unwrap() = Some(e);
                        break;
                    }
                }
            });
        }
    });
    if let Some(e) = error.lock().unwrap().take() {
        return Err(e);
    }
    Ok(total.into_inner())
}

fn parking_lot_free_error_slot() -> std::sync::Mutex<Option<BuildError>> {
    std::sync::Mutex::new(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use silc_geom::Point;
    use silc_network::generate::{grid_network, road_network, GridConfig, RoadConfig};
    use silc_network::{dijkstra, NetworkBuilder};

    fn small() -> Arc<SpatialNetwork> {
        Arc::new(grid_network(&GridConfig { rows: 6, cols: 6, seed: 11, ..Default::default() }))
    }

    #[test]
    fn build_produces_a_tree_per_vertex() {
        let g = small();
        let idx =
            SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 8, threads: 2 }).unwrap();
        assert_eq!(idx.stats().vertices, 36);
        assert_eq!(
            idx.stats().total_blocks,
            (0..36).map(|v| idx.tree(VertexId(v)).block_count()).sum::<usize>()
        );
        assert!(idx.stats().min_blocks >= 1);
        assert!(idx.stats().max_blocks >= idx.stats().min_blocks);
        assert!(idx.stats().build_seconds >= 0.0);
    }

    #[test]
    fn parallel_and_serial_builds_agree() {
        let g = small();
        let a = SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 8, threads: 1 }).unwrap();
        let b = SilcIndex::build(g, &BuildConfig { grid_exponent: 8, threads: 4 }).unwrap();
        assert_eq!(a.stats().total_blocks, b.stats().total_blocks);
        for v in 0..36u32 {
            assert_eq!(
                a.tree(VertexId(v)).entries(),
                b.tree(VertexId(v)).entries(),
                "quadtree of v{v} differs between thread counts"
            );
        }
    }

    #[test]
    fn distances_via_next_hops_match_dijkstra() {
        let g =
            Arc::new(road_network(&RoadConfig { vertices: 120, seed: 31, ..Default::default() }));
        let idx =
            SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 9, threads: 0 }).unwrap();
        for &(s, d) in &[(0u32, 119u32), (5, 80), (37, 2)] {
            let (mut cur, d) = (VertexId(s), VertexId(d));
            let mut total = 0.0;
            let mut hops = 0;
            while cur != d {
                let (next, w) = idx.next_hop(cur, d).unwrap();
                total += w;
                cur = next;
                hops += 1;
                assert!(hops <= g.vertex_count(), "next-hop walk does not terminate");
            }
            let truth = dijkstra::distance(&g, VertexId(s), d).unwrap();
            assert!((total - truth).abs() < 1e-9, "{s}->{}: {total} vs {truth}", d.0);
        }
    }

    #[test]
    fn empty_network_rejected() {
        let g = Arc::new(NetworkBuilder::new().build());
        assert!(matches!(
            SilcIndex::build(g, &BuildConfig::default()),
            Err(BuildError::EmptyNetwork)
        ));
    }

    #[test]
    fn disconnected_network_rejected_in_parallel_build() {
        let mut b = NetworkBuilder::new();
        let u = b.add_vertex(Point::new(0.0, 0.0));
        let v = b.add_vertex(Point::new(1.0, 0.0));
        let _iso = b.add_vertex(Point::new(3.0, 3.0));
        b.add_edge_sym(u, v, 1.0);
        let g = Arc::new(b.build());
        assert!(matches!(
            SilcIndex::build(g, &BuildConfig { grid_exponent: 6, threads: 3 }),
            Err(BuildError::Unreachable { .. })
        ));
    }

    #[test]
    fn count_total_blocks_matches_full_build() {
        let g = small();
        let idx =
            SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 8, threads: 2 }).unwrap();
        let counted = count_total_blocks(&g, 8, 3).unwrap();
        assert_eq!(counted, idx.stats().total_blocks);
    }
}
