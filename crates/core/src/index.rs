//! The in-memory SILC index: shortest-path quadtrees for every vertex.
//!
//! Precomputation is embarrassingly parallel — one Dijkstra plus one
//! quadtree build per source, with no interaction between sources (the paper
//! points this out on p.27, "Easily Parallelizable: data parallelism").
//! Workers self-schedule chunks of vertex ids from a shared atomic counter,
//! each owning one `BuildScratch` (SSSP workspace + Morton-ordered color
//! and distance buffers + quadtree scratch) for its whole lifetime, and
//! write finished quadtrees directly into pre-allocated output slots — no
//! channels, no per-source allocation beyond each tree's exact-size entry
//! vector.

use crate::browser::DistanceBrowser;
use crate::error::BuildError;
use crate::sp_quadtree::{BlockEntry, CellRect, MortonMap, SpQuadtree, TreeScratch};
use crate::spmap::COLOR_SOURCE;
use silc_geom::{GridMapper, Point};
use silc_morton::MortonCode;
use silc_network::dijkstra::{full_sssp_visit, NO_HOP};
use silc_network::{SpatialNetwork, SsspWorkspace, VertexId};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Parameters of index construction.
#[derive(Debug, Clone)]
pub struct BuildConfig {
    /// Grid resolution exponent `q`: vertices are embedded in a `2^q × 2^q`
    /// grid. Must provide at least one cell per vertex; the default (12,
    /// ≈ 16.8 M cells) comfortably fits the networks this library targets.
    pub grid_exponent: u32,
    /// Worker threads for precomputation; `0` means all available cores.
    pub threads: usize,
}

impl Default for BuildConfig {
    fn default() -> Self {
        BuildConfig { grid_exponent: 12, threads: 0 }
    }
}

/// Size and cost statistics of a built index.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexStats {
    /// Number of source vertices (= number of quadtrees).
    pub vertices: usize,
    /// Total Morton blocks across all quadtrees — the `m` of the paper's
    /// storage plot (p.16, slope ≈ 1.5 in log-log).
    pub total_blocks: usize,
    /// Largest single quadtree.
    pub max_blocks: usize,
    /// Smallest single quadtree.
    pub min_blocks: usize,
    /// Wall-clock seconds spent building.
    pub build_seconds: f64,
}

/// The SILC index: one shortest-path quadtree per network vertex.
pub struct SilcIndex {
    network: Arc<SpatialNetwork>,
    mapper: GridMapper,
    codes: Vec<MortonCode>,
    trees: Vec<SpQuadtree>,
    min_ratio: f64,
    stats: IndexStats,
}

impl SilcIndex {
    /// Builds the index for `network`.
    ///
    /// Runs `n` Dijkstra computations (in parallel) and decomposes each
    /// shortest-path map into Morton blocks. Fails if the network is empty,
    /// not strongly connected, has coincident vertex positions, or zero
    /// weight edges.
    pub fn build(network: Arc<SpatialNetwork>, cfg: &BuildConfig) -> Result<Self, BuildError> {
        let start = Instant::now();
        let n = network.vertex_count();
        if n == 0 {
            return Err(BuildError::EmptyNetwork);
        }
        let layout = GridLayout::new(&network, cfg.grid_exponent);
        let trees = build_all_trees(&network, &layout, cfg.threads)?;

        let total_blocks: usize = trees.iter().map(SpQuadtree::block_count).sum();
        let max_blocks = trees.iter().map(SpQuadtree::block_count).max().unwrap_or(0);
        let min_blocks = trees.iter().map(SpQuadtree::block_count).min().unwrap_or(0);
        let min_ratio = network.min_weight_ratio();
        Ok(SilcIndex {
            mapper: layout.mapper,
            codes: layout.codes,
            trees,
            min_ratio,
            stats: IndexStats {
                vertices: n,
                total_blocks,
                max_blocks,
                min_blocks,
                build_seconds: start.elapsed().as_secs_f64(),
            },
            network,
        })
    }

    /// Size and build-cost statistics.
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }

    /// The shortest-path quadtree of vertex `u`.
    pub fn tree(&self, u: VertexId) -> &SpQuadtree {
        &self.trees[u.index()]
    }

    /// The shared network handle.
    pub fn network_arc(&self) -> &Arc<SpatialNetwork> {
        &self.network
    }

    /// Per-vertex grid-cell codes (indexed by vertex id).
    pub fn codes(&self) -> &[MortonCode] {
        &self.codes
    }
}

impl DistanceBrowser for SilcIndex {
    fn network(&self) -> &SpatialNetwork {
        &self.network
    }

    fn mapper(&self) -> &GridMapper {
        &self.mapper
    }

    fn vertex_code(&self, v: VertexId) -> MortonCode {
        self.codes[v.index()]
    }

    fn entry(&self, u: VertexId, code: MortonCode) -> Option<BlockEntry> {
        self.trees[u.index()].lookup(code).copied()
    }

    fn min_lambda(&self, u: VertexId, rect: &CellRect) -> Option<f64> {
        self.trees[u.index()].min_lambda_in_rect(rect)
    }

    fn global_min_ratio(&self) -> f64 {
        self.min_ratio
    }
}

/// The grid embedding shared by every source: unique cells, Morton codes,
/// the code-sorted vertex permutation, and every per-vertex attribute the
/// decomposition reads, pre-permuted into code order so per-source passes
/// touch contiguous memory.
pub(crate) struct GridLayout {
    pub mapper: GridMapper,
    pub codes: Vec<MortonCode>,
    /// `pos_of[v]` = rank of vertex `v` in code order (the scatter target
    /// used by the fused SSSP settle callback).
    pub pos_of: Vec<u32>,
    /// Sorted cell codes (parallel to `sorted`).
    pub codes_sorted: Vec<u64>,
    /// Vertex ids in code order.
    pub verts_sorted: Vec<u32>,
    /// World positions in code order.
    pub positions_sorted: Vec<Point>,
}

impl GridLayout {
    pub(crate) fn new(network: &SpatialNetwork, q: u32) -> Self {
        let mapper = GridMapper::new(*network.bounds(), q);
        let cells = mapper.assign_unique(network.positions());
        let codes: Vec<MortonCode> = cells.into_iter().map(MortonCode::encode).collect();
        let mut sorted: Vec<(u64, u32)> =
            codes.iter().enumerate().map(|(v, c)| (c.0, v as u32)).collect();
        sorted.sort_unstable();
        let mut pos_of = vec![0u32; sorted.len()];
        for (rank, &(_, v)) in sorted.iter().enumerate() {
            pos_of[v as usize] = rank as u32;
        }
        let codes_sorted: Vec<u64> = sorted.iter().map(|&(c, _)| c).collect();
        let verts_sorted: Vec<u32> = sorted.iter().map(|&(_, v)| v).collect();
        let positions_sorted: Vec<Point> =
            verts_sorted.iter().map(|&v| network.positions()[v as usize]).collect();
        GridLayout { mapper, codes, pos_of, codes_sorted, verts_sorted, positions_sorted }
    }
}

/// Per-worker state for index construction, created once per worker thread
/// and reused across every source it builds: the SSSP workspace, the
/// Morton-ordered color/distance buffers the settle callback scatters into,
/// and the quadtree decomposition scratch.
#[derive(Default)]
pub(crate) struct BuildScratch {
    ws: SsspWorkspace,
    colors: Vec<u16>,
    dist: Vec<f64>,
    tree: TreeScratch,
}

/// Runs one source's full pipeline — SSSP with fused Morton scatter, then
/// block decomposition — leaving the blocks in `scratch.tree` and returning
/// the block count. No allocation at steady state.
pub(crate) fn decompose_one(
    network: &SpatialNetwork,
    layout: &GridLayout,
    source: VertexId,
    scratch: &mut BuildScratch,
) -> Result<usize, BuildError> {
    let n = network.vertex_count();
    let BuildScratch { ws, colors, dist, tree } = scratch;
    colors.resize(n, 0);
    dist.resize(n, 0.0);
    let pos_of = &layout.pos_of[..];
    // The settle callback writes each vertex's color and distance straight
    // to its Morton rank — the shortest-path map never exists in vertex
    // order, saving a full permutation pass per source.
    let mut zero_weight = false;
    let run = full_sssp_visit(network, source, ws, |x, d, hop| {
        let rank = pos_of[x.index()] as usize;
        dist[rank] = d;
        debug_assert!(hop == NO_HOP || hop < COLOR_SOURCE as u32, "out-degree exceeds u16 colors");
        colors[rank] = if hop == NO_HOP { COLOR_SOURCE } else { hop as u16 };
        zero_weight |= d <= 0.0 && x != source;
    });
    // Error precedence matches `ShortestPathMap::compute`: a zero-weight
    // edge is diagnosed before (possibly coexisting) unreachability.
    if zero_weight {
        // Deterministic report: the first vertex (in id order) reached at
        // distance zero identifies the offending edge, exactly like the
        // vertex-order scan of `ShortestPathMap::compute`.
        for v in network.vertices() {
            if v != source && run.reached(v) && run.dist(v) <= 0.0 {
                let (t, _) = network.out_edge(source, run.first_hop(v) as usize);
                return Err(BuildError::ZeroWeightEdge(source, t));
            }
        }
        unreachable!("zero-weight flag without a zero-distance vertex");
    }
    if run.visited() < n {
        return Err(BuildError::Unreachable { source, missing: n - run.visited() });
    }
    let morton = MortonMap {
        source,
        src_pos: network.position(source),
        colors,
        dist,
        codes: &layout.codes_sorted,
        verts: &layout.verts_sorted,
        positions: &layout.positions_sorted,
    };
    SpQuadtree::decompose_with(tree, &morton, layout.mapper.q())
}

/// Builds the quadtree of one source through a worker's scratch.
pub(crate) fn build_one(
    network: &SpatialNetwork,
    layout: &GridLayout,
    source: VertexId,
    scratch: &mut BuildScratch,
) -> Result<SpQuadtree, BuildError> {
    decompose_one(network, layout, source, scratch)?;
    Ok(scratch.tree.to_quadtree(layout.mapper.q()))
}

/// A self-scheduled unit of output: the base vertex id of a chunk and the
/// pre-allocated slots its trees are written into.
type SlotChunk<'a> = (usize, &'a mut [Option<SpQuadtree>]);

/// Picks the worker count and self-scheduling chunk size for `n` sources.
fn worker_plan(n: usize, threads: usize) -> (usize, usize) {
    let workers = if threads == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    } else {
        threads
    }
    .min(n)
    .max(1);
    // Chunks are small enough that stragglers self-balance, large enough
    // that the shared counter stays cold.
    let chunk = (n / (workers * 8)).clamp(1, 256);
    (workers, chunk)
}

/// Builds every vertex's quadtree, fanning chunks out to `threads` workers
/// that write finished trees directly into pre-allocated slots.
fn build_all_trees(
    network: &SpatialNetwork,
    layout: &GridLayout,
    threads: usize,
) -> Result<Vec<SpQuadtree>, BuildError> {
    let n = network.vertex_count();
    let (workers, chunk) = worker_plan(n, threads);

    if workers == 1 {
        let mut scratch = BuildScratch::default();
        let mut trees = Vec::with_capacity(n);
        for v in 0..n as u32 {
            trees.push(build_one(network, layout, VertexId(v), &mut scratch)?);
        }
        return Ok(trees);
    }

    let mut slots: Vec<Option<SpQuadtree>> = (0..n).map(|_| None).collect();
    let failed = AtomicBool::new(false);
    let error: Mutex<Option<BuildError>> = Mutex::new(None);
    {
        // Chunked work stack: each worker pops a disjoint `&mut` run of
        // output slots, so finished trees land in place without a channel
        // or a collector thread.
        let work: Mutex<Vec<SlotChunk<'_>>> =
            Mutex::new(slots.chunks_mut(chunk).enumerate().map(|(i, c)| (i * chunk, c)).collect());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let work = &work;
                let failed = &failed;
                let error = &error;
                scope.spawn(move || {
                    let mut scratch = BuildScratch::default();
                    loop {
                        if failed.load(Ordering::Relaxed) {
                            return;
                        }
                        let Some((base, run)) = work.lock().unwrap().pop() else { return };
                        for (i, slot) in run.iter_mut().enumerate() {
                            match build_one(
                                network,
                                layout,
                                VertexId((base + i) as u32),
                                &mut scratch,
                            ) {
                                Ok(tree) => *slot = Some(tree),
                                Err(e) => {
                                    if !failed.swap(true, Ordering::Relaxed) {
                                        *error.lock().unwrap() = Some(e);
                                    }
                                    return;
                                }
                            }
                        }
                    }
                });
            }
        });
    }
    if let Some(e) = error.lock().unwrap().take() {
        return Err(e);
    }
    Ok(slots.into_iter().map(|t| t.expect("all vertices built")).collect())
}

/// Counts the total number of Morton blocks of the index for `network`
/// without keeping the quadtrees in memory.
///
/// This is the measurement behind the storage-scaling experiment (paper
/// p.16): it streams one source at a time (in parallel), so networks far too
/// large to hold a full index fit comfortably.
pub fn count_total_blocks(
    network: &SpatialNetwork,
    grid_exponent: u32,
    threads: usize,
) -> Result<usize, BuildError> {
    let n = network.vertex_count();
    if n == 0 {
        return Err(BuildError::EmptyNetwork);
    }
    let layout = GridLayout::new(network, grid_exponent);
    let (workers, chunk) = worker_plan(n, threads);

    let next = AtomicUsize::new(0);
    let total = AtomicUsize::new(0);
    // Failure is signalled through a lock-free flag checked on the hot
    // path; the mutex-guarded slot is touched only by the worker that
    // actually hits an error.
    let failed = AtomicBool::new(false);
    let error: Mutex<Option<BuildError>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let next = &next;
            let total = &total;
            let failed = &failed;
            let error = &error;
            let layout = &layout;
            scope.spawn(move || {
                let mut scratch = BuildScratch::default();
                loop {
                    if failed.load(Ordering::Relaxed) {
                        return;
                    }
                    let base = next.fetch_add(chunk, Ordering::Relaxed);
                    if base >= n {
                        return;
                    }
                    let mut blocks = 0usize;
                    for v in base..(base + chunk).min(n) {
                        // The decomposition never materializes a tree here —
                        // streaming keeps memory O(1) in the index size.
                        match decompose_one(network, layout, VertexId(v as u32), &mut scratch) {
                            Ok(count) => blocks += count,
                            Err(e) => {
                                if !failed.swap(true, Ordering::Relaxed) {
                                    *error.lock().unwrap() = Some(e);
                                }
                                return;
                            }
                        }
                    }
                    total.fetch_add(blocks, Ordering::Relaxed);
                }
            });
        }
    });
    if let Some(e) = error.lock().unwrap().take() {
        return Err(e);
    }
    Ok(total.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use silc_geom::Point;
    use silc_network::generate::{grid_network, road_network, GridConfig, RoadConfig};
    use silc_network::{dijkstra, NetworkBuilder};

    fn small() -> Arc<SpatialNetwork> {
        Arc::new(grid_network(&GridConfig { rows: 6, cols: 6, seed: 11, ..Default::default() }))
    }

    #[test]
    fn build_produces_a_tree_per_vertex() {
        let g = small();
        let idx =
            SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 8, threads: 2 }).unwrap();
        assert_eq!(idx.stats().vertices, 36);
        assert_eq!(
            idx.stats().total_blocks,
            (0..36).map(|v| idx.tree(VertexId(v)).block_count()).sum::<usize>()
        );
        assert!(idx.stats().min_blocks >= 1);
        assert!(idx.stats().max_blocks >= idx.stats().min_blocks);
        assert!(idx.stats().build_seconds >= 0.0);
    }

    #[test]
    fn parallel_and_serial_builds_agree() {
        let g = small();
        let a = SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 8, threads: 1 }).unwrap();
        let b = SilcIndex::build(g, &BuildConfig { grid_exponent: 8, threads: 4 }).unwrap();
        assert_eq!(a.stats().total_blocks, b.stats().total_blocks);
        for v in 0..36u32 {
            assert_eq!(
                a.tree(VertexId(v)).entries(),
                b.tree(VertexId(v)).entries(),
                "quadtree of v{v} differs between thread counts"
            );
        }
    }

    #[test]
    fn distances_via_next_hops_match_dijkstra() {
        let g =
            Arc::new(road_network(&RoadConfig { vertices: 120, seed: 31, ..Default::default() }));
        let idx =
            SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 9, threads: 0 }).unwrap();
        for &(s, d) in &[(0u32, 119u32), (5, 80), (37, 2)] {
            let (mut cur, d) = (VertexId(s), VertexId(d));
            let mut total = 0.0;
            let mut hops = 0;
            while cur != d {
                let (next, w) = idx.next_hop(cur, d).unwrap();
                total += w;
                cur = next;
                hops += 1;
                assert!(hops <= g.vertex_count(), "next-hop walk does not terminate");
            }
            let truth = dijkstra::distance(&g, VertexId(s), d).unwrap();
            assert!((total - truth).abs() < 1e-9, "{s}->{}: {total} vs {truth}", d.0);
        }
    }

    #[test]
    fn empty_network_rejected() {
        let g = Arc::new(NetworkBuilder::new().build());
        assert!(matches!(
            SilcIndex::build(g, &BuildConfig::default()),
            Err(BuildError::EmptyNetwork)
        ));
    }

    #[test]
    fn disconnected_network_rejected_in_parallel_build() {
        let mut b = NetworkBuilder::new();
        let u = b.add_vertex(Point::new(0.0, 0.0));
        let v = b.add_vertex(Point::new(1.0, 0.0));
        let _iso = b.add_vertex(Point::new(3.0, 3.0));
        b.add_edge_sym(u, v, 1.0);
        let g = Arc::new(b.build());
        assert!(matches!(
            SilcIndex::build(g, &BuildConfig { grid_exponent: 6, threads: 3 }),
            Err(BuildError::Unreachable { .. })
        ));
    }

    #[test]
    fn build_errors_match_shortest_path_map_diagnosis() {
        // `decompose_one` re-derives the zero-weight/unreachable diagnosis
        // the spmap API performs; this locks the two paths to the same
        // error, including precedence when both defects coexist.
        use crate::spmap::ShortestPathMap;
        let fixtures: Vec<(&str, SpatialNetwork)> = vec![
            ("unreachable only", {
                let mut b = NetworkBuilder::new();
                let u = b.add_vertex(Point::new(0.0, 0.0));
                let v = b.add_vertex(Point::new(1.0, 0.0));
                let _iso = b.add_vertex(Point::new(3.0, 3.0));
                b.add_edge_sym(u, v, 1.0);
                b.build()
            }),
            ("zero weight only", {
                let mut b = NetworkBuilder::new();
                let u = b.add_vertex(Point::new(0.0, 0.0));
                let v = b.add_vertex(Point::new(1.0, 0.0));
                b.add_edge_sym(u, v, 0.0);
                b.build()
            }),
            ("zero weight and unreachable", {
                let mut b = NetworkBuilder::new();
                let u = b.add_vertex(Point::new(0.0, 0.0));
                let v = b.add_vertex(Point::new(1.0, 0.0));
                let _iso = b.add_vertex(Point::new(3.0, 3.0));
                b.add_edge_sym(u, v, 0.0);
                b.build()
            }),
        ];
        for (label, g) in fixtures {
            let map_err = ShortestPathMap::compute(&g, VertexId(0)).unwrap_err();
            let build_err = match SilcIndex::build(
                Arc::new(g),
                &BuildConfig { grid_exponent: 6, threads: 1 },
            ) {
                Err(e) => e,
                Ok(_) => panic!("builder must fail for: {label}"),
            };
            assert_eq!(
                format!("{map_err:?}"),
                format!("{build_err:?}"),
                "error diagnosis diverges between spmap and index builder for: {label}"
            );
        }
    }

    #[test]
    fn count_total_blocks_matches_full_build() {
        let g = small();
        let idx =
            SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 8, threads: 2 }).unwrap();
        let counted = count_total_blocks(&g, 8, 3).unwrap();
        assert_eq!(counted, idx.stats().total_blocks);
    }
}
