//! The distance-browsing API shared by the in-memory and disk-resident
//! indexes.
//!
//! Everything the query algorithms in `silc-query` need is expressed through
//! [`DistanceBrowser`]: next-hop lookups, O(1)-after-lookup distance
//! intervals, and region lower bounds. The in-memory [`crate::SilcIndex`]
//! and the page-buffered [`crate::DiskSilcIndex`] both implement it, so every
//! kNN variant runs unchanged against either.

use crate::error::QueryError;
use crate::interval::DistInterval;
use crate::sp_quadtree::{BlockEntry, CellRect, COLOR_SOURCE};
use silc_geom::{GridMapper, Point, Rect};
use silc_morton::MortonCode;
use silc_network::{SpatialNetwork, VertexId};

/// Read access to a SILC index.
pub trait DistanceBrowser {
    /// The underlying spatial network.
    fn network(&self) -> &SpatialNetwork;

    /// The world → grid embedding the index was built with.
    fn mapper(&self) -> &GridMapper;

    /// The grid-cell Morton code assigned to vertex `v`.
    fn vertex_code(&self, v: VertexId) -> MortonCode;

    /// The block of `u`'s shortest-path quadtree containing `code`, if any.
    fn entry(&self, u: VertexId, code: MortonCode) -> Option<BlockEntry>;

    /// Minimum `λ−` over the blocks of `u`'s quadtree intersecting `rect`
    /// (see [`crate::SpQuadtree::min_lambda_in_rect`]).
    fn min_lambda(&self, u: VertexId, rect: &CellRect) -> Option<f64>;

    /// The network-wide minimum of `weight / euclidean_length`: the always
    /// valid fallback ratio for `d_network ≥ ratio · d_euclidean`.
    fn global_min_ratio(&self) -> f64;

    // ------------------------------------------------------------------
    // Fallible lookups
    // ------------------------------------------------------------------
    //
    // The disk-resident index can genuinely fail a lookup (an I/O error
    // that survived retries, a page that failed its checksum). The `try_*`
    // family surfaces that as a `QueryError`; the infallible methods stay
    // the convenient API for in-memory indexes and for callers that treat
    // a failed disk as fatal — they are wrappers that panic only at this
    // API boundary.

    /// Fallible [`Self::entry`]. In-memory indexes never fail; the default
    /// simply wraps the infallible lookup.
    fn try_entry(&self, u: VertexId, code: MortonCode) -> Result<Option<BlockEntry>, QueryError> {
        Ok(self.entry(u, code))
    }

    /// Fallible [`Self::min_lambda`].
    fn try_min_lambda(&self, u: VertexId, rect: &CellRect) -> Result<Option<f64>, QueryError> {
        Ok(self.min_lambda(u, rect))
    }

    /// Fallible [`Self::next_hop`]: a destination not covered by `u`'s
    /// quadtree — impossible for a well-formed index — surfaces as
    /// [`QueryError::Corrupt`] instead of a panic.
    fn try_next_hop(
        &self,
        u: VertexId,
        dest: VertexId,
    ) -> Result<Option<(VertexId, f64)>, QueryError> {
        if u == dest {
            return Ok(None);
        }
        let Some(entry) = self.try_entry(u, self.vertex_code(dest))? else {
            return Err(QueryError::Corrupt {
                page: None,
                detail: format!("quadtree of {u} does not cover destination {dest}"),
            });
        };
        debug_assert_ne!(entry.color, COLOR_SOURCE, "distinct vertices share a cell");
        Ok(Some(self.network().out_edge(u, entry.color as usize)))
    }

    /// Fallible [`Self::interval`].
    fn try_interval(&self, u: VertexId, v: VertexId) -> Result<DistInterval, QueryError> {
        if u == v {
            return Ok(DistInterval::exact(0.0));
        }
        let euclid = self.network().euclidean(u, v);
        Ok(match self.try_entry(u, self.vertex_code(v))? {
            Some(e) => e.interval(euclid),
            None => DistInterval::new(self.global_min_ratio() * euclid, f64::INFINITY),
        })
    }

    /// Fallible [`Self::region_lower_bound`].
    fn try_region_lower_bound(&self, u: VertexId, world: &Rect) -> Result<f64, QueryError> {
        let euclid = world.min_distance(&self.network().position(u));
        if euclid == 0.0 {
            return Ok(0.0);
        }
        let rect = self.cell_rect_for(world);
        let lambda = self.try_min_lambda(u, &rect)?.unwrap_or_else(|| self.global_min_ratio());
        Ok(lambda * euclid)
    }

    // ------------------------------------------------------------------
    // Provided operations
    // ------------------------------------------------------------------

    /// The first edge on a shortest path `u → dest`: returns the next
    /// vertex and the edge weight. `None` when `u == dest`.
    ///
    /// # Panics
    /// Panics where [`Self::try_next_hop`] would error (I/O failure,
    /// corruption, uncovered destination).
    fn next_hop(&self, u: VertexId, dest: VertexId) -> Option<(VertexId, f64)> {
        self.try_next_hop(u, dest).unwrap_or_else(|e| panic!("{e}"))
    }

    /// `DISTANCE_INTERVAL(u, v)`: an interval guaranteed to contain the
    /// network distance `u → v`, from one block lookup.
    ///
    /// # Panics
    /// Panics where [`Self::try_interval`] would error.
    fn interval(&self, u: VertexId, v: VertexId) -> DistInterval {
        self.try_interval(u, v).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The grid-cell rectangle covering `world`, expanded by one cell on
    /// every side to absorb the rounding of vertex positions to cells.
    fn cell_rect_for(&self, world: &Rect) -> CellRect {
        let m = self.mapper();
        let lo = m.to_grid(&Point::new(world.min_x, world.min_y));
        let hi = m.to_grid(&Point::new(world.max_x, world.max_y));
        let max = m.side() - 1;
        CellRect::new(
            lo.x.saturating_sub(1),
            lo.y.saturating_sub(1),
            (hi.x + 1).min(max),
            (hi.y + 1).min(max),
        )
    }

    /// `DISTANCE_INTERVAL(u, region).lo`: a lower bound on the network
    /// distance from `u` to *anything located on a vertex inside* `world`.
    ///
    /// # Panics
    /// Panics where [`Self::try_region_lower_bound`] would error.
    fn region_lower_bound(&self, u: VertexId, world: &Rect) -> f64 {
        self.try_region_lower_bound(u, world).unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{BuildConfig, SilcIndex};
    use silc_network::dijkstra;
    use silc_network::generate::{grid_network, GridConfig};
    use std::sync::Arc;

    fn index() -> SilcIndex {
        let g = grid_network(&GridConfig { rows: 7, cols: 7, seed: 17, ..Default::default() });
        SilcIndex::build(Arc::new(g), &BuildConfig { grid_exponent: 8, threads: 2 }).unwrap()
    }

    #[test]
    fn next_hop_starts_a_shortest_path() {
        let idx = index();
        let g = idx.network();
        let (s, d) = (VertexId(0), VertexId(48));
        let (t, w) = idx.next_hop(s, d).unwrap();
        let total = dijkstra::distance(g, s, d).unwrap();
        let rest = dijkstra::distance(g, t, d).unwrap();
        assert!((total - (w + rest)).abs() < 1e-9);
        assert!(idx.next_hop(s, s).is_none());
    }

    #[test]
    fn interval_contains_true_distance() {
        let idx = index();
        let g = idx.network();
        for s in [VertexId(0), VertexId(24), VertexId(13)] {
            for d in g.vertices() {
                let i = idx.interval(s, d);
                let truth = dijkstra::distance(g, s, d).unwrap();
                assert!(
                    truth >= i.lo - 1e-9 && truth <= i.hi + 1e-9,
                    "{s}->{d}: {truth} outside {i}"
                );
            }
        }
    }

    #[test]
    fn region_lower_bound_is_valid() {
        let idx = index();
        let g = idx.network();
        let u = VertexId(3);
        let b = g.bounds();
        let world =
            Rect::new(b.min_x + b.width() * 0.6, b.min_y + b.height() * 0.6, b.max_x, b.max_y);
        let bound = idx.region_lower_bound(u, &world);
        for v in g.vertices() {
            if world.contains(&g.position(v)) {
                let d = dijkstra::distance(g, u, v).unwrap();
                assert!(d >= bound - 1e-9, "bound {bound} exceeds d({u},{v}) = {d}");
            }
        }
    }

    #[test]
    fn region_containing_u_has_zero_bound() {
        let idx = index();
        let u = VertexId(24);
        let p = idx.network().position(u);
        let world = Rect::new(p.x - 0.1, p.y - 0.1, p.x + 0.1, p.y + 0.1);
        assert_eq!(idx.region_lower_bound(u, &world), 0.0);
    }
}
