//! Shortest-path retrieval in size-of-path steps.
//!
//! With a SILC index, the shortest path `s → d` is recovered hop by hop:
//! look up `d`'s colored block in `s`'s quadtree, move to the indicated
//! neighbor `t`, look up `d` in `t`'s quadtree, and so on (paper p.17).
//! Each step costs one `O(log n)` block lookup, so the whole retrieval is
//! `O(k log n)` for a `k`-edge path — no Dijkstra, no visited set.

use crate::browser::DistanceBrowser;
use crate::error::BuildError;
use silc_network::VertexId;

/// A retrieved shortest path.
#[derive(Debug, Clone, PartialEq)]
pub struct SilcPath {
    /// Vertices along the path; `path[0]` is the source, the last element
    /// the destination.
    pub path: Vec<VertexId>,
    /// Total network distance.
    pub distance: f64,
}

impl SilcPath {
    /// Number of edges on the path.
    pub fn edge_count(&self) -> usize {
        self.path.len().saturating_sub(1)
    }
}

/// Retrieves the shortest path `s → d` by repeated next-hop lookups.
///
/// Fails with [`BuildError::Corrupt`] if the walk does not reach `d` within
/// `n` hops, which can only happen when the index does not belong to this
/// network.
pub fn shortest_path<B: DistanceBrowser + ?Sized>(
    b: &B,
    s: VertexId,
    d: VertexId,
) -> Result<SilcPath, BuildError> {
    let n = b.network().vertex_count();
    let mut path = Vec::with_capacity(16);
    path.push(s);
    let mut cur = s;
    let mut distance = 0.0;
    while cur != d {
        let (next, w) = b
            .next_hop(cur, d)
            .ok_or_else(|| BuildError::Corrupt("next_hop returned None before target".into()))?;
        distance += w;
        cur = next;
        path.push(cur);
        if path.len() > n {
            return Err(BuildError::Corrupt(
                "next-hop walk exceeded vertex count; index does not match network".into(),
            ));
        }
    }
    Ok(SilcPath { path, distance })
}

/// The exact network distance `s → d` via path retrieval.
///
/// Prefer [`crate::refine::RefinableDistance`] when an interval suffices —
/// this walks the entire path.
pub fn network_distance<B: DistanceBrowser + ?Sized>(
    b: &B,
    s: VertexId,
    d: VertexId,
) -> Result<f64, BuildError> {
    // Walk without materializing the path vector.
    let n = b.network().vertex_count();
    let mut cur = s;
    let mut distance = 0.0;
    let mut hops = 0usize;
    while cur != d {
        let (next, w) = b
            .next_hop(cur, d)
            .ok_or_else(|| BuildError::Corrupt("next_hop returned None before target".into()))?;
        distance += w;
        cur = next;
        hops += 1;
        if hops > n {
            return Err(BuildError::Corrupt(
                "next-hop walk exceeded vertex count; index does not match network".into(),
            ));
        }
    }
    Ok(distance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{BuildConfig, SilcIndex};
    use silc_network::dijkstra;
    use silc_network::generate::{road_network, RoadConfig};
    use std::sync::Arc;

    fn index() -> SilcIndex {
        let g = road_network(&RoadConfig { vertices: 150, seed: 77, ..Default::default() });
        SilcIndex::build(Arc::new(g), &BuildConfig { grid_exponent: 9, threads: 0 }).unwrap()
    }

    #[test]
    fn paths_are_valid_and_optimal() {
        let idx = index();
        let g = idx.network();
        for &(s, d) in &[(0u32, 149u32), (10, 11), (77, 3), (5, 5)] {
            let (s, d) = (VertexId(s), VertexId(d));
            let p = shortest_path(&idx, s, d).unwrap();
            assert_eq!(*p.path.first().unwrap(), s);
            assert_eq!(*p.path.last().unwrap(), d);
            // Each consecutive pair is a real edge whose weights sum to the
            // reported distance.
            let mut sum = 0.0;
            for w in p.path.windows(2) {
                sum += g.edge_weight(w[0], w[1]).expect("path uses real edges");
            }
            assert!((sum - p.distance).abs() < 1e-9);
            // And the distance is optimal.
            let truth = dijkstra::distance(g, s, d).unwrap();
            assert!((p.distance - truth).abs() < 1e-9, "{s}->{d}: {} vs {truth}", p.distance);
        }
    }

    #[test]
    fn trivial_path() {
        let idx = index();
        let p = shortest_path(&idx, VertexId(4), VertexId(4)).unwrap();
        assert_eq!(p.path, vec![VertexId(4)]);
        assert_eq!(p.distance, 0.0);
        assert_eq!(p.edge_count(), 0);
    }

    #[test]
    fn network_distance_equals_path_distance() {
        let idx = index();
        for &(s, d) in &[(3u32, 120u32), (99, 100)] {
            let (s, d) = (VertexId(s), VertexId(d));
            let via_path = shortest_path(&idx, s, d).unwrap().distance;
            let direct = network_distance(&idx, s, d).unwrap();
            assert!((via_path - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn retrieval_touches_only_path_vertices() {
        // The headline claim (paper p.3): SILC retrieves the path in
        // size-of-path steps while Dijkstra settles most of the network.
        let idx = index();
        let g = idx.network();
        let (s, d) = (VertexId(0), VertexId(149));
        let p = shortest_path(&idx, s, d).unwrap();
        let dij = dijkstra::point_to_point(g, s, d).unwrap();
        assert!(
            p.path.len() < dij.visited,
            "SILC touched {} vertices, Dijkstra settled {}",
            p.path.len(),
            dij.visited
        );
    }
}
