//! # SILC — Scalable Network Distance Browsing
//!
//! A from-scratch implementation of the SILC framework of Samet,
//! Sankaranarayanan and Alborzi, *Scalable Network Distance Browsing in
//! Spatial Databases*, SIGMOD 2008 (best paper).
//!
//! The framework precomputes, for **every** vertex `u` of a spatial network,
//! a *shortest-path quadtree*: the vertices of the network are colored by
//! the first edge of the shortest path from `u`, and the resulting spatially
//! coherent regions are stored as a flat, sorted list of Morton blocks, each
//! carrying the color plus interval bounds `[λ−, λ+]` on the ratio between
//! network and Euclidean distance. This turns shortest-path and
//! network-distance queries into purely geometric lookups:
//!
//! * the **next hop** toward any destination is one `O(log n)` block lookup,
//!   so a whole shortest path is retrieved in size-of-path steps
//!   ([`path::shortest_path`]),
//! * the **network distance** between any two objects is progressively
//!   refined through intervals `[δ−, δ+]` that tighten by one hop per step
//!   ([`refine::RefinableDistance`]) — most queries (comparisons, rankings)
//!   finish long before the interval collapses to an exact distance.
//!
//! Total storage is `O(N√N)` Morton blocks for `N` vertices (paper §4;
//! reproduced by the `storage_scaling` bench), against `O(N³)` for explicit
//! all-pairs paths and `O(N²)` for a next-hop matrix.
//!
//! ## Crate layout
//!
//! | module | contents |
//! |---|---|
//! | [`interval`] | network-distance intervals `[δ−, δ+]` |
//! | [`spmap`] | shortest-path maps (first-hop coloring of all vertices) |
//! | [`sp_quadtree`] | the shortest-path quadtree and its block decomposition |
//! | [`index`] | [`SilcIndex`]: parallel all-vertex precomputation |
//! | [`browser`] | [`DistanceBrowser`]: the lookup API shared by the in-memory and disk-resident indexes |
//! | [`refine`] | progressive refinement and interval comparison primitives |
//! | [`path`] | shortest-path retrieval in size-of-path steps |
//! | [`disk`] | [`DiskSilcIndex`]: the index serialized onto real disk pages behind an LRU buffer pool |
//! | [`mbr_baseline`] | the rejected R-tree-style MBR storage design (ablation A1) |
//!
//! The disk-resident forms are built for disks that misbehave: page files
//! carry per-page checksums (format `SILCIDX2`; v1 files stay readable),
//! transient read failures are retried inside the buffer pool, and every
//! surviving fault surfaces as a typed [`QueryError`] — corruption names
//! the poisoned page — through `try_`-prefixed fallible twins of the query
//! methods. See the `silc-storage` crate docs for the full fault model.
//!
//! ## Quickstart
//!
//! ```
//! use silc::prelude::*;
//! use silc_network::generate::{grid_network, GridConfig};
//!
//! // A small road network and its SILC index.
//! let network = std::sync::Arc::new(grid_network(&GridConfig {
//!     rows: 8, cols: 8, ..Default::default()
//! }));
//! let index = SilcIndex::build(network.clone(), &BuildConfig::default()).unwrap();
//!
//! // Network distance and shortest path between two vertices, no Dijkstra.
//! let (s, d) = (VertexId(0), VertexId(63));
//! let path = silc::path::shortest_path(&index, s, d).unwrap();
//! assert_eq!(path.path.first(), Some(&s));
//! assert_eq!(path.path.last(), Some(&d));
//! ```

pub mod browser;
pub mod disk;
pub mod error;
pub mod frontier;
pub mod index;
pub mod interval;
pub mod mbr_baseline;
pub mod partitioned;
pub mod path;
pub mod refine;
pub mod sp_quadtree;
pub mod spmap;

pub use browser::DistanceBrowser;
pub use disk::DiskSilcIndex;
pub use error::{BuildError, QueryError};
pub use frontier::FrontierTier;
pub use index::{BuildConfig, IndexStats, SilcIndex};
pub use interval::DistInterval;
pub use partitioned::{
    OpenWarning, PartitionedBuildConfig, PartitionedBuildError, PartitionedSilcIndex,
};
pub use sp_quadtree::{BlockEntry, CellRect, SpQuadtree, COLOR_SOURCE};

/// The most common imports.
pub mod prelude {
    pub use crate::browser::DistanceBrowser;
    pub use crate::index::{BuildConfig, SilcIndex};
    pub use crate::interval::DistInterval;
    pub use crate::refine::RefinableDistance;
    pub use silc_network::{SpatialNetwork, VertexId};
}
