//! Errors raised while building, loading or querying a SILC index.

use silc_network::VertexId;
use std::io;

/// Why an index could not be built or loaded.
#[derive(Debug)]
pub enum BuildError {
    /// Some vertex cannot be reached from `source`; SILC precomputation
    /// requires a strongly connected network (extract the largest component
    /// first — see `silc_network::analysis::largest_component`).
    Unreachable { source: VertexId, missing: usize },
    /// Two vertices share the same world position, so no `[λ−, λ+]` ratio
    /// interval can bound their network distance.
    CoincidentVertices(VertexId, VertexId),
    /// An edge has zero weight between distinct vertices; path retrieval by
    /// repeated next hops requires strictly positive weights to terminate.
    ZeroWeightEdge(VertexId, VertexId),
    /// The network is empty.
    EmptyNetwork,
    /// An I/O error while writing or reading a disk-resident index.
    Io(std::io::Error),
    /// A disk-resident index file is malformed.
    Corrupt(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Unreachable { source, missing } => write!(
                f,
                "{missing} vertices unreachable from {source}; the network must be strongly connected"
            ),
            BuildError::CoincidentVertices(a, b) => {
                write!(f, "vertices {a} and {b} share the same position")
            }
            BuildError::ZeroWeightEdge(a, b) => {
                write!(f, "zero-weight edge between {a} and {b}")
            }
            BuildError::EmptyNetwork => write!(f, "the network has no vertices"),
            BuildError::Io(e) => write!(f, "I/O error: {e}"),
            BuildError::Corrupt(msg) => write!(f, "corrupt index file: {msg}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for BuildError {
    fn from(e: std::io::Error) -> Self {
        BuildError::Io(e)
    }
}

/// Why a query against a disk-resident index could not complete.
///
/// Raised by the fallible (`try_*`) lookup path: transient store faults
/// that survived the pool's retries, and corruption the page checksums
/// caught. The infallible lookup methods panic with this error's message
/// at the API boundary instead.
#[derive(Debug)]
pub enum QueryError {
    /// An I/O error reading index pages (retries already exhausted).
    Io(io::Error),
    /// The index data is corrupt: a page failed checksum verification
    /// (`page` names it) or decoded bytes violated a structural invariant.
    Corrupt {
        /// The page that failed verification, when known.
        page: Option<u64>,
        /// What went wrong.
        detail: String,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Io(e) => write!(f, "index I/O error: {e}"),
            QueryError::Corrupt { page: Some(p), detail } => {
                write!(f, "corrupt index: page {p}: {detail}")
            }
            QueryError::Corrupt { page: None, detail } => write!(f, "corrupt index: {detail}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Io(e) => Some(e),
            QueryError::Corrupt { .. } => None,
        }
    }
}

impl From<io::Error> for QueryError {
    /// Lifts an I/O error, recognizing the typed page-corruption payload
    /// of `silc_storage::corrupt_page` so checksum failures keep naming
    /// their page across the layer boundary. Any other `InvalidData` error
    /// — a record decoder rejecting malformed bytes (bad varint,
    /// structural invariant violated) — is corruption too, just without a
    /// page to name.
    fn from(e: io::Error) -> Self {
        match silc_storage::as_page_corrupt(&e) {
            Some(pc) => QueryError::Corrupt { page: Some(pc.page), detail: pc.detail.clone() },
            None if e.kind() == io::ErrorKind::InvalidData => {
                QueryError::Corrupt { page: None, detail: e.to_string() }
            }
            None => QueryError::Io(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = BuildError::Unreachable { source: VertexId(3), missing: 7 };
        assert!(e.to_string().contains("7 vertices unreachable from v3"));
        let e = BuildError::CoincidentVertices(VertexId(1), VertexId(2));
        assert!(e.to_string().contains("v1"));
        assert!(e.to_string().contains("v2"));
        let e = BuildError::Io(std::io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn io_source_is_exposed() {
        use std::error::Error;
        let e = BuildError::Io(std::io::Error::other("x"));
        assert!(e.source().is_some());
        assert!(BuildError::EmptyNetwork.source().is_none());
    }

    #[test]
    fn query_error_recovers_the_corrupt_page() {
        let e = QueryError::from(silc_storage::corrupt_page(7, "checksum mismatch"));
        match &e {
            QueryError::Corrupt { page: Some(7), detail } => {
                assert!(detail.contains("checksum mismatch"))
            }
            other => panic!("expected typed corruption, got {other:?}"),
        }
        assert!(e.to_string().contains("page 7"));
        let e = QueryError::from(std::io::Error::other("disk gone"));
        assert!(matches!(e, QueryError::Io(_)));
        assert!(e.to_string().contains("disk gone"));
    }

    #[test]
    fn invalid_data_lifts_to_pageless_corruption() {
        let e = QueryError::from(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "vertex 3: non-canonical varint",
        ));
        match &e {
            QueryError::Corrupt { page: None, detail } => {
                assert!(detail.contains("non-canonical varint"))
            }
            other => panic!("expected pageless corruption, got {other:?}"),
        }
    }
}
