//! Errors raised while building or loading a SILC index.

use silc_network::VertexId;

/// Why an index could not be built or loaded.
#[derive(Debug)]
pub enum BuildError {
    /// Some vertex cannot be reached from `source`; SILC precomputation
    /// requires a strongly connected network (extract the largest component
    /// first — see `silc_network::analysis::largest_component`).
    Unreachable { source: VertexId, missing: usize },
    /// Two vertices share the same world position, so no `[λ−, λ+]` ratio
    /// interval can bound their network distance.
    CoincidentVertices(VertexId, VertexId),
    /// An edge has zero weight between distinct vertices; path retrieval by
    /// repeated next hops requires strictly positive weights to terminate.
    ZeroWeightEdge(VertexId, VertexId),
    /// The network is empty.
    EmptyNetwork,
    /// An I/O error while writing or reading a disk-resident index.
    Io(std::io::Error),
    /// A disk-resident index file is malformed.
    Corrupt(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Unreachable { source, missing } => write!(
                f,
                "{missing} vertices unreachable from {source}; the network must be strongly connected"
            ),
            BuildError::CoincidentVertices(a, b) => {
                write!(f, "vertices {a} and {b} share the same position")
            }
            BuildError::ZeroWeightEdge(a, b) => {
                write!(f, "zero-weight edge between {a} and {b}")
            }
            BuildError::EmptyNetwork => write!(f, "the network has no vertices"),
            BuildError::Io(e) => write!(f, "I/O error: {e}"),
            BuildError::Corrupt(msg) => write!(f, "corrupt index file: {msg}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for BuildError {
    fn from(e: std::io::Error) -> Self {
        BuildError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = BuildError::Unreachable { source: VertexId(3), missing: 7 };
        assert!(e.to_string().contains("7 vertices unreachable from v3"));
        let e = BuildError::CoincidentVertices(VertexId(1), VertexId(2));
        assert!(e.to_string().contains("v1"));
        assert!(e.to_string().contains("v2"));
        let e = BuildError::Io(std::io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn io_source_is_exposed() {
        use std::error::Error;
        let e = BuildError::Io(std::io::Error::other("x"));
        assert!(e.source().is_some());
        assert!(BuildError::EmptyNetwork.source().is_none());
    }
}
