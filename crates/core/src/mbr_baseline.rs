//! The rejected storage design: minimum bounding rectangles per color.
//!
//! Wagner & Willhalm (ESA 2003) stored each first-hop region of a
//! shortest-path map as a minimum bounding box. The paper rejects this
//! (p.13): the boxes of different colors *overlap*, so a destination lookup
//! may return several candidate next hops, and disambiguating them can
//! degenerate to Dijkstra. This module implements that design so ablation A1
//! can measure the ambiguity rate the shortest-path quadtree eliminates.

use crate::spmap::{ShortestPathMap, COLOR_SOURCE};
use silc_geom::{Point, Rect};

/// Per-color minimum bounding rectangles of one source's shortest-path map.
#[derive(Debug, Clone)]
pub struct ColorMbrIndex {
    /// `(color, bounding rect of that color's vertices)`.
    rects: Vec<(u16, Rect)>,
}

impl ColorMbrIndex {
    /// Builds the MBRs for `map` over `positions`.
    pub fn build(map: &ShortestPathMap, positions: &[Point]) -> Self {
        let mut per_color: std::collections::BTreeMap<u16, Rect> =
            std::collections::BTreeMap::new();
        for (v, &color) in map.colors.iter().enumerate() {
            if color == COLOR_SOURCE {
                continue;
            }
            let p = &positions[v];
            per_color
                .entry(color)
                .and_modify(|r| r.expand(p))
                .or_insert_with(|| Rect::new(p.x, p.y, p.x, p.y));
        }
        ColorMbrIndex { rects: per_color.into_iter().collect() }
    }

    /// Number of colors (== number of rectangles).
    pub fn color_count(&self) -> usize {
        self.rects.len()
    }

    /// All colors whose bounding rectangle contains `p`.
    ///
    /// With overlapping boxes this may return zero, one, or several
    /// candidates — only a unique candidate identifies the next hop.
    pub fn lookup(&self, p: &Point) -> Vec<u16> {
        self.rects.iter().filter(|(_, r)| r.contains(p)).map(|&(c, _)| c).collect()
    }

    /// Fraction of `probes` whose lookup is ambiguous (≠ 1 candidate) —
    /// the quantity ablation A1 reports against the quadtree's 0 %.
    pub fn ambiguity_rate(&self, probes: &[Point]) -> f64 {
        if probes.is_empty() {
            return 0.0;
        }
        let ambiguous = probes.iter().filter(|p| self.lookup(p).len() != 1).count();
        ambiguous as f64 / probes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silc_network::generate::{grid_network, GridConfig};
    use silc_network::VertexId;

    fn fixture() -> (silc_network::SpatialNetwork, ShortestPathMap, ColorMbrIndex) {
        let g = grid_network(&GridConfig { rows: 8, cols: 8, seed: 2, ..Default::default() });
        let map = ShortestPathMap::compute(&g, VertexId(27)).unwrap();
        let mbr = ColorMbrIndex::build(&map, g.positions());
        (g, map, mbr)
    }

    #[test]
    fn every_vertex_is_covered_by_its_color_box() {
        let (g, map, mbr) = fixture();
        for v in g.vertices() {
            if v == VertexId(27) {
                continue;
            }
            let candidates = mbr.lookup(&g.position(v));
            assert!(
                candidates.contains(&map.colors[v.index()]),
                "true color missing from candidates of {v}"
            );
        }
    }

    #[test]
    fn color_count_bounded_by_out_degree() {
        let (g, _, mbr) = fixture();
        assert!(mbr.color_count() <= g.out_degree(VertexId(27)));
        assert!(mbr.color_count() >= 2, "interior vertex should use several colors");
    }

    #[test]
    fn overlapping_boxes_create_ambiguity() {
        // On a grid with ≥ 3 directions from an interior source, the MBRs
        // overlap near the source, so some vertex lookups see > 1 candidate.
        let (g, _, mbr) = fixture();
        let rate = mbr.ambiguity_rate(g.positions());
        assert!(rate > 0.0, "expected some ambiguous lookups, rate = {rate}");
        assert!(rate < 1.0, "not everything can be ambiguous");
    }

    #[test]
    fn empty_probe_set() {
        let (_, _, mbr) = fixture();
        assert_eq!(mbr.ambiguity_rate(&[]), 0.0);
    }
}
