//! Progressive refinement of network distances.
//!
//! The defining primitive of SILC query processing (paper §5): a network
//! distance is carried as an interval `[δ−, δ+]` that one *refinement step*
//! tightens by advancing a single hop along the shortest path. The running
//! state is always `exact prefix + one interval` —
//! `d(q, o) = d(q, t) + [λ−·dE(t,o), λ+·dE(t,o)]` for the current
//! intermediate vertex `t` — which the paper contrasts (p.30) with distance
//! oracles whose estimates are sums of *two* intervals.

use crate::browser::DistanceBrowser;
use crate::error::QueryError;
use crate::interval::DistInterval;
use silc_network::VertexId;
use std::cmp::Ordering;

/// A progressively refinable network distance between two vertex-resident
/// objects.
#[derive(Debug, Clone)]
pub struct RefinableDistance {
    origin: VertexId,
    target: VertexId,
    /// Current intermediate vertex `t` on the shortest path origin → target.
    cur: VertexId,
    /// Exact network distance origin → `cur`.
    prefix: f64,
    interval: DistInterval,
    refinements: usize,
}

impl RefinableDistance {
    /// Starts refinement with the zero-hop interval
    /// `[λ−·dE(q,o), λ+·dE(q,o)]`.
    ///
    /// # Panics
    /// Panics where [`Self::try_new`] would error (disk failure on the
    /// initial lookup).
    pub fn new<B: DistanceBrowser + ?Sized>(b: &B, origin: VertexId, target: VertexId) -> Self {
        Self::try_new(b, origin, target).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::new`].
    pub fn try_new<B: DistanceBrowser + ?Sized>(
        b: &B,
        origin: VertexId,
        target: VertexId,
    ) -> Result<Self, QueryError> {
        let interval = b.try_interval(origin, target)?;
        Ok(RefinableDistance { origin, target, cur: origin, prefix: 0.0, interval, refinements: 0 })
    }

    /// The origin object's vertex.
    pub fn origin(&self) -> VertexId {
        self.origin
    }

    /// The target object's vertex.
    pub fn target(&self) -> VertexId {
        self.target
    }

    /// The current distance interval.
    #[inline]
    pub fn interval(&self) -> DistInterval {
        self.interval
    }

    /// Is the distance known exactly?
    #[inline]
    pub fn is_exact(&self) -> bool {
        self.interval.is_exact()
    }

    /// Number of refinement steps taken so far.
    pub fn refinements(&self) -> usize {
        self.refinements
    }

    /// Advances one hop along the shortest path, tightening the interval.
    /// Returns `false` (and does nothing) once the distance is exact.
    ///
    /// # Panics
    /// Panics where [`Self::try_refine`] would error.
    pub fn refine<B: DistanceBrowser + ?Sized>(&mut self, b: &B) -> bool {
        self.try_refine(b).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::refine`]. On an error the state is unchanged —
    /// the interval stays the last sound one, so a caller may keep (or
    /// report) it even after the disk went away.
    pub fn try_refine<B: DistanceBrowser + ?Sized>(&mut self, b: &B) -> Result<bool, QueryError> {
        if self.is_exact() {
            return Ok(false);
        }
        let Some((next, w)) = b.try_next_hop(self.cur, self.target)? else {
            // cur == target: the interval should already be exact.
            self.interval = DistInterval::exact(self.prefix);
            return Ok(false);
        };
        // Complete every fallible lookup *before* mutating state, so an
        // error leaves a consistent (merely unrefined) distance.
        let tail =
            if next == self.target { None } else { Some(b.try_interval(next, self.target)?) };
        self.refinements += 1;
        self.cur = next;
        self.prefix += w;
        match tail {
            None => self.interval = DistInterval::exact(self.prefix),
            Some(t) => {
                let tail = t.offset(self.prefix);
                // Bounds can only tighten: intersect with what we already
                // knew. Both intervals contain the true distance in exact
                // arithmetic, but floating-point slop can make them barely
                // disjoint; the distance then lies in the (noise-sized) gap
                // between their facing endpoints, so that gap is the
                // tightest sound interval.
                self.interval = tail.intersect(&self.interval).unwrap_or_else(|| {
                    let gap_lo = tail.hi.min(self.interval.hi);
                    let gap_hi = tail.lo.max(self.interval.lo);
                    DistInterval::new(gap_lo, gap_hi)
                });
            }
        }
        Ok(true)
    }

    /// Refines to the exact network distance (worst case: walks the whole
    /// path).
    ///
    /// # Panics
    /// Panics where [`Self::try_refine_until_exact`] would error.
    pub fn refine_until_exact<B: DistanceBrowser + ?Sized>(&mut self, b: &B) -> f64 {
        while self.refine(b) {}
        self.interval.lo
    }

    /// Fallible [`Self::refine_until_exact`]. An error aborts the walk
    /// with the state consistent at the last completed hop.
    pub fn try_refine_until_exact<B: DistanceBrowser + ?Sized>(
        &mut self,
        b: &B,
    ) -> Result<f64, QueryError> {
        while self.try_refine(b)? {}
        Ok(self.interval.lo)
    }
}

/// Compares two network distances by progressive refinement, refining only
/// while their intervals collide and always the wider one first.
///
/// This is the paper's "Is Munich closer to Mainz than Bremen?" primitive
/// (p.18): most comparisons resolve after a handful of refinements, long
/// before either distance is known exactly.
pub fn compare_refining<B: DistanceBrowser + ?Sized>(
    b: &B,
    a: &mut RefinableDistance,
    c: &mut RefinableDistance,
) -> Ordering {
    loop {
        let (ia, ic) = (a.interval(), c.interval());
        if ia.strictly_before(&ic) {
            return Ordering::Less;
        }
        if ic.strictly_before(&ia) {
            return Ordering::Greater;
        }
        if ia.is_exact() && ic.is_exact() {
            return ia.lo.total_cmp(&ic.lo);
        }
        // Refine the wider interval first; fall back to the other one.
        // (The branches differ in refinement *order*, which matters:
        // short-circuiting stops at the first side that makes progress.)
        let refine_a_first = ia.width() >= ic.width();
        #[allow(clippy::if_same_then_else)]
        let progressed =
            if refine_a_first { a.refine(b) || c.refine(b) } else { c.refine(b) || a.refine(b) };
        debug_assert!(progressed, "no progress while intervals still collide");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{BuildConfig, SilcIndex};
    use silc_network::dijkstra;
    use silc_network::generate::{grid_network, GridConfig};
    use std::sync::Arc;

    fn index() -> SilcIndex {
        let g = grid_network(&GridConfig { rows: 9, cols: 9, seed: 23, ..Default::default() });
        SilcIndex::build(Arc::new(g), &BuildConfig { grid_exponent: 8, threads: 2 }).unwrap()
    }

    #[test]
    fn refinement_tightens_monotonically_and_converges() {
        let idx = index();
        let (s, d) = (VertexId(0), VertexId(80));
        let truth = dijkstra::distance(idx.network(), s, d).unwrap();
        let mut r = RefinableDistance::new(&idx, s, d);
        let mut prev = r.interval();
        assert!(prev.contains(truth));
        while r.refine(&idx) {
            let cur = r.interval();
            assert!(cur.lo >= prev.lo - 1e-9, "lower bound regressed");
            assert!(cur.hi <= prev.hi + 1e-9, "upper bound regressed");
            assert!(
                cur.contains(truth)
                    || (truth - cur.lo).abs() < 1e-9
                    || (cur.hi - truth).abs() < 1e-9,
                "interval {cur} lost the true distance {truth}"
            );
            prev = cur;
        }
        assert!(r.is_exact());
        assert!((r.interval().lo - truth).abs() < 1e-9);
        // Refinement count equals the number of path edges walked.
        let path = dijkstra::point_to_point(idx.network(), s, d).unwrap().path;
        assert!(r.refinements() <= path.len());
    }

    #[test]
    fn identical_endpoints_are_exact_immediately() {
        let idx = index();
        let mut r = RefinableDistance::new(&idx, VertexId(5), VertexId(5));
        assert!(r.is_exact());
        assert_eq!(r.interval(), DistInterval::exact(0.0));
        assert!(!r.refine(&idx));
        assert_eq!(r.refinements(), 0);
    }

    #[test]
    fn refine_until_exact_matches_dijkstra_everywhere() {
        let idx = index();
        let s = VertexId(40);
        for d in idx.network().vertices() {
            let mut r = RefinableDistance::new(&idx, s, d);
            let got = r.refine_until_exact(&idx);
            let truth = dijkstra::distance(idx.network(), s, d).unwrap();
            assert!((got - truth).abs() < 1e-9, "{s}->{d}: {got} vs {truth}");
        }
    }

    #[test]
    fn comparison_answers_without_full_refinement() {
        let idx = index();
        let q = VertexId(0);
        // A nearby and a far-away target: intervals should separate quickly.
        let near = VertexId(1);
        let far = VertexId(80);
        let mut a = RefinableDistance::new(&idx, q, near);
        let mut c = RefinableDistance::new(&idx, q, far);
        let ord = compare_refining(&idx, &mut a, &mut c);
        assert_eq!(ord, Ordering::Less);
        let d_near = dijkstra::distance(idx.network(), q, near).unwrap();
        let d_far = dijkstra::distance(idx.network(), q, far).unwrap();
        assert!(d_near < d_far, "fixture assumption");
        // The far distance should not need to be refined to exactness.
        assert!(!c.is_exact() || c.refinements() == 0, "comparison over-refined the easy case");
    }

    #[test]
    fn comparison_is_consistent_with_truth() {
        let idx = index();
        let q = VertexId(30);
        for &(x, y) in &[(10u32, 70u32), (2, 3), (45, 44), (80, 0)] {
            let mut a = RefinableDistance::new(&idx, q, VertexId(x));
            let mut c = RefinableDistance::new(&idx, q, VertexId(y));
            let ord = compare_refining(&idx, &mut a, &mut c);
            let dx = dijkstra::distance(idx.network(), q, VertexId(x)).unwrap();
            let dy = dijkstra::distance(idx.network(), q, VertexId(y)).unwrap();
            assert_eq!(ord, dx.total_cmp(&dy), "wrong order for ({x}, {y})");
        }
    }
}
