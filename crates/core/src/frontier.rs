//! The frontier-distance tier: exact shard-internal distances from every
//! frontier vertex, precomputed once and paged off disk.
//!
//! A partitioned index (see [`crate::partitioned`]) answers within-shard
//! distances exactly but knows nothing exact *across* the cut: the PR-6
//! router stitched shards together with interval upper bounds, so a third
//! of its answers could only be certified as sound intervals, never exact.
//! This tier closes that gap the way distance labellings do — store a
//! small set of exact precomputed distances that every cross-shard path
//! must pass through. Here the label set is the partition's **frontier**:
//! the cut-edge endpoints. Any path between shards enters and leaves
//! through frontier vertices, so
//!
//! * one shard-confined SSSP per frontier vertex (the **forward row**:
//!   distances from `f` to every vertex of its shard) gives the exact
//!   frontier-pair edges of the router's frontier graph *and* the exact
//!   "last mile" from any entry vertex to any object in the shard, and
//! * the same SSSP run on the shard's **reversed** network (the **reverse
//!   row**: distances from every vertex *to* `f`) gives the exact "first
//!   mile" from an arbitrary query vertex to its home frontier.
//!
//! On symmetric networks (every generator in `silc-network`) the two
//! coincide and only forward rows are stored (`directions = 1`).
//!
//! ## File layout (version 1, magic `SILCFDT1`)
//!
//! ```text
//! header    magic "SILCFDT1", version u32, shard count u32,
//!           directions u32 (1 = symmetric, forward rows serve both;
//!           2 = forward rows then reverse rows per shard),
//!           total row count u64, checksum-table offset u64,
//!           row-region byte length u64, row-region offset u64
//! meta      per shard, varint-coded: vertex count | frontier count |
//!           frontier local ids delta+varint (first absolute, later gaps,
//!           strictly sorted: never 0)
//! rows      per shard, direction-major then frontier-rank-major: one row
//!           of `vertex count` × f64 LE exact distances indexed by local
//!           vertex id. Full f64 bits — the router's exactness claims are
//!           bit-level, so distances are never narrowed.
//! (page padding)
//! checksums one 64-bit digest (8-lane FNV-1a) per payload page, verified
//!           on every physical read — bit rot in a row surfaces as a typed
//!           [`QueryError::Corrupt`] naming the page, never a silently
//!           wrong "exact" distance
//! ```
//!
//! The row payload is raw `f64` (exactness forbids narrowing); the
//! delta+varint coding covers the structural metadata, same discipline as
//! the SILCIDX3 directory and the PCP v4 pair groups. Rows are served
//! through a [`TieredPool`] — decoded rows cache as `Arc<[f64]>`, row
//! scans run with readahead on (the cold frontier-graph load at engine
//! start reads the whole region sequentially, the workload
//! `PrefetchPolicy` was built for).

use crate::error::{BuildError, QueryError};
use bytes::{Buf, BufMut};
use silc_network::partition::NetworkPartition;
use silc_network::{analysis, dijkstra, NetworkBuilder, SpatialNetwork, VertexId};
use silc_storage::varint::{self, VarintReader};
use silc_storage::{
    read_span, ChecksumTable, FilePageStore, PageStore, PrefetchPolicy, TieredPool, PAGE_SIZE,
};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

pub(crate) const MAGIC: &[u8; 8] = b"SILCFDT1";
/// Current (written) format version.
pub const VERSION: u32 = 1;
/// Header size: magic + version/shards/directions + four u64 fields. The
/// row-region offset is the last 8 header bytes, per the house convention.
const HEADER_BYTES: usize = 8 + 4 + 4 + 4 + 8 + 8 + 8 + 8;
/// File name of the tier inside a partitioned index directory.
pub const FILE_NAME: &str = "frontier.tier";

/// Which way a row measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Distances *from* the frontier vertex to every shard vertex.
    Forward,
    /// Distances from every shard vertex *to* the frontier vertex.
    Reverse,
}

/// The shard's reversed network: same vertices and positions, every edge
/// flipped. A forward SSSP on it yields distances *to* the source.
fn reversed(g: &SpatialNetwork) -> SpatialNetwork {
    let mut b = NetworkBuilder::with_capacity(g.vertex_count(), g.edge_count());
    for v in g.vertices() {
        b.add_vertex(g.position(v));
    }
    for u in g.vertices() {
        for (v, w) in g.out_edges(u) {
            b.add_edge(v, u, w);
        }
    }
    b.build()
}

/// One row's work order for the self-scheduling build workers.
struct RowTask {
    shard: u32,
    /// 0 = forward network, 1 = reversed network.
    slot: u8,
    rank: u32,
}

/// Builds the tier over `partition` and serializes it: one shard-confined
/// SSSP per (frontier vertex × direction), run by self-scheduling chunked
/// workers (`threads == 0` means all cores), each with a reused
/// [`dijkstra::SsspWorkspace`]. Output is deterministic for any thread
/// count — every task writes its own row slot, and SSSP distances are
/// exact f64s with a fixed relaxation order.
///
/// Unreachable vertices (possible only on shards that are weakly but not
/// strongly connected, which the per-shard index build rejects anyway)
/// encode as `+∞` — a sound "no shard-internal path" the router treats as
/// a missing edge.
pub fn build_tier(partition: &NetworkPartition, threads: usize) -> Vec<u8> {
    let members = partition.frontier_members();
    let symmetric = partition.shards().iter().all(|s| analysis::is_symmetric(s.network()));
    let directions: u32 = if symmetric { 1 } else { 2 };
    let reversed_nets: Vec<Option<SpatialNetwork>> = partition
        .shards()
        .iter()
        .map(|s| if symmetric { None } else { Some(reversed(s.network())) })
        .collect();

    let mut tasks = Vec::new();
    for (s, m) in members.iter().enumerate() {
        for slot in 0..directions as u8 {
            for rank in 0..m.len() as u32 {
                tasks.push(RowTask { shard: s as u32, slot, rank });
            }
        }
    }

    let hw = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    let workers = if threads == 0 { hw } else { threads }.clamp(1, tasks.len().max(1));
    let chunk = (tasks.len() / (workers * 8)).clamp(1, 256);
    let rows: Vec<OnceLock<Vec<f64>>> = (0..tasks.len()).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut ws = dijkstra::SsspWorkspace::new();
                loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= tasks.len() {
                        break;
                    }
                    let end = (start + chunk).min(tasks.len());
                    for (i, t) in tasks[start..end].iter().enumerate() {
                        let s = t.shard as usize;
                        let g = match t.slot {
                            0 => partition.shard(s).network(),
                            _ => reversed_nets[s].as_ref().expect("asymmetric build"),
                        };
                        let src = members[s][t.rank as usize];
                        let mut row = vec![f64::INFINITY; g.vertex_count()];
                        dijkstra::sssp_settle_until(g, VertexId(src), &mut ws, |v, d| {
                            row[v.index()] = d;
                            true
                        });
                        rows[start + i].set(row).expect("each row is computed exactly once");
                    }
                }
            });
        }
    });

    // Serialize: varint metadata, then the concatenated row region.
    let mut meta = Vec::new();
    for (s, m) in members.iter().enumerate() {
        varint::encode_u64(partition.shard(s).vertex_count() as u64, &mut meta);
        varint::encode_u64(m.len() as u64, &mut meta);
        let mut prev: Option<u32> = None;
        for &f in m {
            let delta = match prev {
                None => f as u64,
                Some(p) => (f - p) as u64, // strictly sorted: never 0
            };
            varint::encode_u64(delta, &mut meta);
            prev = Some(f);
        }
    }
    let rows_base = HEADER_BYTES + meta.len();
    let rows_len: usize =
        tasks.iter().map(|t| partition.shard(t.shard as usize).vertex_count() * 8).sum();
    let payload_len = rows_base + rows_len;
    let cksum_base = payload_len.div_ceil(PAGE_SIZE) * PAGE_SIZE;

    let mut buf = Vec::with_capacity(cksum_base);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(partition.shard_count() as u32);
    buf.put_u32_le(directions);
    buf.put_u64_le(tasks.len() as u64);
    buf.put_u64_le(cksum_base as u64);
    buf.put_u64_le(rows_len as u64);
    buf.put_u64_le(rows_base as u64);
    buf.extend_from_slice(&meta);
    for row in &rows {
        for &d in row.get().expect("all rows computed") {
            buf.put_f64_le(d);
        }
    }
    debug_assert_eq!(buf.len(), payload_len);
    let table = ChecksumTable::compute(&buf);
    buf.resize(cksum_base, 0);
    buf.extend_from_slice(&table.to_bytes());
    buf
}

/// Writes an encoded tier to `path` crash-safely (temp + fsync + rename,
/// via [`FilePageStore::create`]).
pub fn write_tier(bytes: &[u8], path: &Path) -> io::Result<()> {
    FilePageStore::create(path, bytes)?;
    Ok(())
}

/// Per-shard pinned metadata of an open tier.
struct ShardMeta {
    /// Sorted local ids of the shard's frontier vertices — the rank order
    /// every row index and the router's frontier graph share.
    frontier: Vec<u32>,
    vertex_count: u32,
    /// First row id of the shard (cache key space).
    row_id_base: u64,
    /// Byte offset of the shard's first row inside the row region.
    byte_base: u64,
}

/// The disk-resident frontier-distance tier: pinned per-shard metadata
/// plus the row region served through a [`TieredPool`] (decoded rows
/// cache as `Arc<[f64]>`; readahead is on — row scans are sequential).
pub struct FrontierTier {
    tiered: TieredPool<Box<dyn PageStore>, Arc<[f64]>>,
    shards: Vec<ShardMeta>,
    directions: u32,
    rows_base: u64,
    rows_len: u64,
}

impl FrontierTier {
    /// Opens a tier file and validates it against `partition` (which is
    /// deterministic, so the expected frontier is recomputable): shard
    /// count, per-shard vertex counts, and the exact frontier member
    /// lists must all match, and the row accounting must tile the row
    /// region. `cache_fraction` sizes the page pool as elsewhere.
    pub fn open<P: AsRef<Path>>(
        path: P,
        partition: &NetworkPartition,
        cache_fraction: f64,
    ) -> Result<Self, BuildError> {
        let store = FilePageStore::open(path)?;
        Self::from_store(Box::new(store), partition, cache_fraction)
    }

    /// [`Self::open`] over any page store (the fault-injection seam).
    pub fn from_store(
        store: Box<dyn PageStore>,
        partition: &NetworkPartition,
        cache_fraction: f64,
    ) -> Result<Self, BuildError> {
        let corrupt = |msg: String| BuildError::Corrupt(msg);
        let file_len = store.page_count() * PAGE_SIZE as u64;
        if file_len < HEADER_BYTES as u64 {
            return Err(corrupt("frontier tier file too small for header".into()));
        }
        let header = read_span(&store, 0, HEADER_BYTES)?;
        if &header[..8] != MAGIC {
            return Err(corrupt("bad frontier tier magic".into()));
        }
        let mut h = &header[8..];
        let version = h.get_u32_le();
        if version != VERSION {
            return Err(corrupt(format!("unknown frontier tier version {version}")));
        }
        let shard_count = h.get_u32_le() as usize;
        if shard_count != partition.shard_count() {
            return Err(corrupt(format!(
                "tier has {shard_count} shards, partition has {}",
                partition.shard_count()
            )));
        }
        let directions = h.get_u32_le();
        if !(1..=2).contains(&directions) {
            return Err(corrupt(format!("direction count {directions} out of range")));
        }
        let total_rows = h.get_u64_le();
        let cksum_base = h.get_u64_le();
        let rows_len = h.get_u64_le();
        let rows_base = h.get_u64_le();

        if cksum_base % PAGE_SIZE as u64 != 0 {
            return Err(corrupt("checksum table is not page-aligned".into()));
        }
        let payload_pages = (cksum_base / PAGE_SIZE as u64) as usize;
        if cksum_base + (payload_pages * 8) as u64 > file_len {
            return Err(corrupt("checksum table extends past end of file".into()));
        }
        if rows_base.checked_add(rows_len).is_none_or(|end| {
            end > cksum_base || end.div_ceil(PAGE_SIZE as u64) * PAGE_SIZE as u64 != cksum_base
        }) {
            return Err(corrupt("row region does not tile the payload".into()));
        }
        let raw_table = read_span(&store, cksum_base as usize, payload_pages * 8)?;
        let table = Arc::new(
            ChecksumTable::from_bytes(&raw_table, payload_pages)
                .map_err(|e| corrupt(e.to_string()))?,
        );

        if rows_base < HEADER_BYTES as u64 {
            return Err(corrupt("row region overlaps the header".into()));
        }
        let meta =
            silc_storage::checksum::read_span_verified(&store, 0, rows_base as usize, &table)
                .map_err(|e| corrupt(e.to_string()))?;
        let expected = partition.frontier_members();
        let mut r = VarintReader::new(&meta[HEADER_BYTES..]);
        let mut shards = Vec::with_capacity(shard_count);
        let mut row_id = 0u64;
        let mut byte_base = 0u64;
        for (s, want) in expected.iter().enumerate() {
            let vertex_count = r.u64().map_err(|e| corrupt(e.to_string()))?;
            if vertex_count != partition.shard(s).vertex_count() as u64 {
                return Err(corrupt(format!("shard {s} vertex count mismatch")));
            }
            let fcount = r.u64().map_err(|e| corrupt(e.to_string()))?;
            if fcount != want.len() as u64 {
                return Err(corrupt(format!("shard {s} frontier count mismatch")));
            }
            let mut frontier = Vec::with_capacity(fcount as usize);
            let mut prev: Option<u64> = None;
            for _ in 0..fcount {
                let delta = r.u64().map_err(|e| corrupt(e.to_string()))?;
                let f = match prev {
                    None => delta,
                    Some(p) if delta == 0 => {
                        return Err(corrupt(format!(
                            "shard {s} frontier ids not strictly sorted (p={p})"
                        )));
                    }
                    Some(p) => p + delta,
                };
                if f >= vertex_count {
                    return Err(corrupt(format!("shard {s} frontier id {f} out of range")));
                }
                frontier.push(f as u32);
                prev = Some(f);
            }
            if frontier != *want {
                return Err(corrupt(format!(
                    "shard {s} frontier members diverge from the partition"
                )));
            }
            shards.push(ShardMeta {
                frontier,
                vertex_count: vertex_count as u32,
                row_id_base: row_id,
                byte_base,
            });
            row_id += directions as u64 * fcount;
            byte_base += directions as u64 * fcount * vertex_count * 8;
        }
        if r.remaining() != 0 {
            return Err(corrupt(format!("{} trailing metadata bytes", r.remaining())));
        }
        if row_id != total_rows {
            return Err(corrupt(format!("row count {row_id} disagrees with header {total_rows}")));
        }
        if byte_base != rows_len {
            return Err(corrupt(format!("row bytes {byte_base} disagree with header {rows_len}")));
        }

        let decoded_capacity = (total_rows as usize).clamp(32, 8192);
        let mut tiered = TieredPool::new(store, cache_fraction, decoded_capacity);
        tiered.set_checksums(table);
        // Readahead on: the cold frontier-graph load and the last-mile row
        // reads of one shard are sequential scans of adjacent rows.
        tiered.set_prefetch_policy(PrefetchPolicy { window: 8 });
        Ok(FrontierTier { tiered, shards, directions, rows_base, rows_len })
    }

    /// `1` if forward rows serve both directions (symmetric shards), `2`
    /// if separate reverse rows are stored.
    pub fn directions(&self) -> u32 {
        self.directions
    }

    /// Total stored rows.
    pub fn row_count(&self) -> u64 {
        self.shards.iter().map(|m| self.directions as u64 * m.frontier.len() as u64).sum()
    }

    /// Bytes of the row region (excluding metadata, padding, checksums).
    pub fn rows_bytes(&self) -> u64 {
        self.rows_len
    }

    /// The sorted frontier local ids of shard `s` — rank `r` in this slice
    /// is the row rank used by [`Self::try_row`].
    pub fn frontier(&self, s: usize) -> &[u32] {
        &self.shards[s].frontier
    }

    /// Rank of local vertex `local` in shard `s`'s frontier, if a member.
    pub fn frontier_rank(&self, s: usize, local: u32) -> Option<usize> {
        self.shards[s].frontier.binary_search(&local).ok()
    }

    /// One exact distance row: `row[v]` is the shard-internal distance
    /// from frontier vertex `rank` to local vertex `v` (`Forward`) or from
    /// `v` to the frontier vertex (`Reverse`). `+∞` means no shard-internal
    /// path. Validated on decode (no NaN, no negatives, zero
    /// self-distance); a failed checksum or validation surfaces as a typed
    /// [`QueryError::Corrupt`].
    pub fn try_row(&self, s: usize, rank: usize, dir: Direction) -> Result<Arc<[f64]>, QueryError> {
        let m = &self.shards[s];
        let slot = match (self.directions, dir) {
            (1, _) | (_, Direction::Forward) => 0u64,
            (_, Direction::Reverse) => 1u64,
        };
        let fcount = m.frontier.len() as u64;
        let src = m.frontier[rank] as usize;
        let vcount = m.vertex_count as usize;
        let row_id = m.row_id_base + slot * fcount + rank as u64;
        let from = (self.rows_base
            + m.byte_base
            + (slot * fcount + rank as u64) * vcount as u64 * 8) as usize;
        self.tiered
            .try_get_or_decode(row_id, |pool| {
                let mut raw = Vec::with_capacity(vcount * 8);
                pool.read_range(from as u64, (from + vcount * 8) as u64, &mut raw)?;
                let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
                let mut row = Vec::with_capacity(vcount);
                let mut b = &raw[..];
                for v in 0..vcount {
                    let d = b.get_f64_le();
                    if d.is_nan() || d < 0.0 {
                        return Err(invalid(format!("row {row_id}: distance at {v} out of range")));
                    }
                    row.push(d);
                }
                if row[src] != 0.0 {
                    return Err(invalid(format!("row {row_id}: nonzero self-distance")));
                }
                Ok(row.into())
            })
            .map_err(QueryError::from)
    }

    /// I/O counters of the row pool.
    pub fn io_stats(&self) -> silc_storage::IoStats {
        self.tiered.io_stats()
    }

    /// Zeroes the I/O counters.
    pub fn reset_io_stats(&self) {
        self.tiered.reset_stats();
    }

    /// Drops cached pages and decoded rows (cold start).
    pub fn clear_cache(&self) {
        self.tiered.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silc_network::generate::{road_network, RoadConfig};
    use silc_network::partition::{partition_network, PartitionConfig};
    use silc_storage::MemPageStore;

    fn fixture(n: usize, shards: usize, seed: u64) -> (SpatialNetwork, NetworkPartition) {
        let g = road_network(&RoadConfig { vertices: n, seed, ..Default::default() });
        let p = partition_network(&g, &PartitionConfig { shards, ..Default::default() }).unwrap();
        (g, p)
    }

    fn open_mem(bytes: &[u8], p: &NetworkPartition) -> FrontierTier {
        FrontierTier::from_store(Box::new(MemPageStore::new(bytes)), p, 1.0).unwrap()
    }

    #[test]
    fn rows_match_in_shard_dijkstra_both_directions() {
        let (_, p) = fixture(260, 4, 17);
        let bytes = build_tier(&p, 2);
        let tier = open_mem(&bytes, &p);
        assert_eq!(tier.directions(), 1, "road networks are symmetric");
        for (s, shard) in p.shards().iter().enumerate() {
            let members = tier.frontier(s).to_vec();
            for (rank, &f) in members.iter().enumerate() {
                let fwd = tier.try_row(s, rank, Direction::Forward).unwrap();
                let rev = tier.try_row(s, rank, Direction::Reverse).unwrap();
                assert_eq!(fwd.len(), shard.vertex_count());
                for v in (0..shard.vertex_count() as u32).step_by(7) {
                    let d = dijkstra::distance(shard.network(), VertexId(f), VertexId(v))
                        .unwrap_or(f64::INFINITY);
                    assert_eq!(fwd[v as usize].to_bits(), d.to_bits(), "shard {s} row {rank}");
                    // Symmetric: the reverse row is the same row.
                    assert_eq!(rev[v as usize].to_bits(), d.to_bits());
                }
            }
        }
    }

    #[test]
    fn directed_networks_store_true_reverse_rows() {
        // A ring with asymmetric weights: strongly connected, not symmetric.
        let mut b = NetworkBuilder::new();
        let n = 24u32;
        for i in 0..n {
            let a = f64::from(i) / f64::from(n) * std::f64::consts::TAU;
            b.add_vertex(silc_geom::Point::new(a.cos() * 50.0, a.sin() * 50.0));
        }
        for i in 0..n {
            let j = (i + 1) % n;
            b.add_edge(VertexId(i), VertexId(j), 1.0);
            b.add_edge(VertexId(j), VertexId(i), 3.0); // backward is dearer
        }
        let g = b.build();
        let p = partition_network(
            &g,
            &PartitionConfig { shards: 2, min_shard_fraction: 0.0, ..Default::default() },
        )
        .unwrap();
        let bytes = build_tier(&p, 1);
        let tier = open_mem(&bytes, &p);
        assert_eq!(tier.directions(), 2, "asymmetric shards need reverse rows");
        for (s, shard) in p.shards().iter().enumerate() {
            for rank in 0..tier.frontier(s).len() {
                let f = tier.frontier(s)[rank];
                let fwd = tier.try_row(s, rank, Direction::Forward).unwrap();
                let rev = tier.try_row(s, rank, Direction::Reverse).unwrap();
                for v in 0..shard.vertex_count() as u32 {
                    let d_from = dijkstra::distance(shard.network(), VertexId(f), VertexId(v))
                        .unwrap_or(f64::INFINITY);
                    let d_to = dijkstra::distance(shard.network(), VertexId(v), VertexId(f))
                        .unwrap_or(f64::INFINITY);
                    assert_eq!(fwd[v as usize].to_bits(), d_from.to_bits(), "shard {s}");
                    assert_eq!(rev[v as usize].to_bits(), d_to.to_bits(), "shard {s}");
                }
            }
        }
    }

    #[test]
    fn build_is_deterministic_across_thread_counts() {
        let (_, p) = fixture(200, 3, 5);
        let a = build_tier(&p, 1);
        let b = build_tier(&p, 4);
        assert_eq!(a, b, "row slots make the encode thread-count independent");
    }

    #[test]
    fn corrupt_row_page_is_a_typed_error_naming_the_page() {
        let (_, p) = fixture(900, 4, 17);
        let mut bytes = build_tier(&p, 1);
        // Flip one byte in a row page past the metadata (metadata pages
        // are verified at open; rows are verified on read).
        let header = &bytes[..HEADER_BYTES];
        let rows_base = u64::from_le_bytes(header[HEADER_BYTES - 8..].try_into().unwrap());
        let rows_len =
            u64::from_le_bytes(header[HEADER_BYTES - 16..HEADER_BYTES - 8].try_into().unwrap());
        let target = ((rows_base as usize / PAGE_SIZE) + 1) * PAGE_SIZE + 12;
        assert!(target < (rows_base + rows_len) as usize, "fixture rows must span pages");
        bytes[target] ^= 0x40;
        let tier = open_mem(&bytes, &p);
        let mut corrupt_seen = false;
        for s in 0..p.shard_count() {
            for rank in 0..tier.frontier(s).len() {
                if let Err(QueryError::Corrupt { page, .. }) =
                    tier.try_row(s, rank, Direction::Forward)
                {
                    assert_eq!(page, Some((target / PAGE_SIZE) as u64));
                    corrupt_seen = true;
                }
            }
        }
        assert!(corrupt_seen, "some row must cross the poisoned page");
    }

    #[test]
    fn mismatched_partition_is_rejected_at_open() {
        let (g, p) = fixture(260, 4, 17);
        let bytes = build_tier(&p, 1);
        let other =
            partition_network(&g, &PartitionConfig { shards: 5, ..Default::default() }).unwrap();
        match FrontierTier::from_store(Box::new(MemPageStore::new(&bytes)), &other, 1.0) {
            Err(BuildError::Corrupt(msg)) => assert!(msg.contains("shards"), "{msg}"),
            other => panic!("expected Corrupt, got {:?}", other.err().map(|e| e.to_string())),
        }
    }

    #[test]
    fn tampered_metadata_fails_the_checksum_at_open() {
        let (_, p) = fixture(200, 3, 5);
        let mut bytes = build_tier(&p, 1);
        bytes[HEADER_BYTES + 3] ^= 0x01;
        match FrontierTier::from_store(Box::new(MemPageStore::new(&bytes)), &p, 1.0) {
            Err(BuildError::Corrupt(msg)) => {
                assert!(msg.contains("page"), "checksum must name the page: {msg}")
            }
            other => panic!("expected Corrupt, got {:?}", other.err().map(|e| e.to_string())),
        }
    }
}
