//! Property-based tests of the SILC core invariants over randomized
//! networks: every generated network (any seed, any size) must satisfy the
//! paper's structural guarantees exactly.

use proptest::prelude::*;
use silc::prelude::*;
use silc::DistanceBrowser;
use silc_network::dijkstra;
use silc_network::generate::{grid_network, road_network, GridConfig, RoadConfig};
use std::sync::Arc;

fn build_road(vertices: usize, seed: u64) -> (Arc<SpatialNetwork>, SilcIndex) {
    let g = Arc::new(road_network(&RoadConfig { vertices, seed, ..Default::default() }));
    let idx = SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 9, threads: 0 })
        .expect("generated networks build");
    (g, idx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Shortest-path quadtree blocks are sorted, disjoint, and assign every
    /// vertex its true first-hop color.
    #[test]
    fn quadtree_blocks_are_a_disjoint_cover(seed in 0u64..500, source in 0u32..60) {
        let (g, idx) = build_road(60, seed);
        let tree = idx.tree(VertexId(source));
        for w in tree.entries().windows(2) {
            prop_assert!(w[0].block.end() <= w[1].block.start());
        }
        let truth = dijkstra::full_sssp(&g, VertexId(source));
        for v in g.vertices() {
            if v == VertexId(source) {
                continue;
            }
            let entry = tree.lookup(idx.vertex_code(v)).expect("covered");
            let (hop, w) = g.out_edge(VertexId(source), entry.color as usize);
            // The color's edge must begin a shortest path.
            let rest = dijkstra::distance(&g, hop, v).unwrap();
            prop_assert!((truth.dist[v.index()] - (w + rest)).abs() < 1e-9);
        }
    }

    /// Distance intervals from one lookup always contain the true distance,
    /// for every pair.
    #[test]
    fn intervals_always_bracket_truth(seed in 0u64..500) {
        let (g, idx) = build_road(50, seed);
        for s in g.vertices() {
            let truth = dijkstra::full_sssp(&g, s);
            for d in g.vertices() {
                let iv = idx.interval(s, d);
                let t = truth.dist[d.index()];
                prop_assert!(iv.lo <= t + 1e-9 && iv.hi >= t - 1e-9,
                    "{s}->{d}: {t} outside {iv}");
            }
        }
    }

    /// Path retrieval by next hops is always optimal and terminates within
    /// n hops.
    #[test]
    fn path_retrieval_is_optimal(seed in 0u64..500, s in 0u32..40, d in 0u32..40) {
        let (g, idx) = build_road(40, seed);
        let p = silc::path::shortest_path(&idx, VertexId(s), VertexId(d)).unwrap();
        let truth = dijkstra::distance(&g, VertexId(s), VertexId(d)).unwrap();
        prop_assert!((p.distance - truth).abs() < 1e-9);
        prop_assert!(p.path.len() <= g.vertex_count());
    }

    /// Refinement is monotone: lower bounds never decrease, upper bounds
    /// never increase, and the exact distance is reached within path-length
    /// steps.
    #[test]
    fn refinement_is_monotone(seed in 0u64..500, s in 0u32..40, d in 0u32..40) {
        let (g, idx) = build_road(40, seed);
        let mut r = RefinableDistance::new(&idx, VertexId(s), VertexId(d));
        let mut prev = r.interval();
        let mut steps = 0usize;
        while r.refine(&idx) {
            let cur = r.interval();
            prop_assert!(cur.lo >= prev.lo - 1e-9);
            prop_assert!(cur.hi <= prev.hi + 1e-9);
            prev = cur;
            steps += 1;
            prop_assert!(steps <= g.vertex_count());
        }
        prop_assert!(r.is_exact());
    }

    /// Grid networks (different topology family) satisfy the same
    /// invariants.
    #[test]
    fn grid_topology_invariants(seed in 0u64..500) {
        let g = Arc::new(grid_network(&GridConfig {
            rows: 6, cols: 7, seed, ..Default::default()
        }));
        let idx = SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 8, threads: 0 })
            .unwrap();
        let s = VertexId(seed as u32 % 42);
        let truth = dijkstra::full_sssp(&g, s);
        for d in g.vertices() {
            let got = silc::path::network_distance(&idx, s, d).unwrap();
            prop_assert!((got - truth.dist[d.index()]).abs() < 1e-9);
        }
    }

    /// The region lower bound never exceeds the distance of any vertex
    /// positioned inside the region.
    #[test]
    fn region_bounds_are_sound(seed in 0u64..500, qx in 0.1f64..0.9, qy in 0.1f64..0.9) {
        let (g, idx) = build_road(50, seed);
        let b = g.bounds();
        let world = silc_geom::Rect::new(
            b.min_x + b.width() * qx * 0.5,
            b.min_y + b.height() * qy * 0.5,
            b.min_x + b.width() * (0.5 + qx * 0.5),
            b.min_y + b.height() * (0.5 + qy * 0.5),
        );
        let u = VertexId(seed as u32 % 50);
        let bound = idx.region_lower_bound(u, &world);
        let truth = dijkstra::full_sssp(&g, u);
        for v in g.vertices() {
            if world.contains(&g.position(v)) {
                prop_assert!(truth.dist[v.index()] >= bound - 1e-9,
                    "bound {bound} > d({u},{v}) = {}", truth.dist[v.index()]);
            }
        }
    }
}
