#!/bin/sh
# Spec<->test lockstep gate: every frame type named in docs/PROTOCOL.md's
# frame table must have a round-trip/decode test named `frame_<name>_...`
# in crates/server/src/protocol.rs. Renaming a frame in the spec, or adding
# one without a test, fails this check (CI runs it on every PR).
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
spec="$repo_root/docs/PROTOCOL.md"
impl="$repo_root/crates/server/src/protocol.rs"

names=$(sed -n 's/^| `0x[0-9A-Fa-f]*` | `\([A-Z_]*\)` .*/\1/p' "$spec")
if [ "$(printf '%s\n' "$names" | wc -l)" -lt 10 ]; then
    echo "FAIL: expected at least 10 frame types in $spec, parsed:" >&2
    printf '%s\n' "$names" >&2
    exit 1
fi

status=0
for name in $names; do
    lower=$(printf '%s' "$name" | tr 'A-Z' 'a-z')
    if grep -q "fn frame_${lower}_" "$impl"; then
        echo "  ok $name -> frame_${lower}_*"
    else
        echo "FAIL: spec names frame $name but $impl has no test matching fn frame_${lower}_*" >&2
        status=1
    fi
done
exit $status
